"""Build and run one trace-driven simulation (§4.3).

``run_trace`` reenacts a (synthetic) IP multicast transmission: the source
multicasts packet ``i`` at ``t0 + i·period``; the network drops packet
``i`` on exactly the links of the trace's link representation, reproducing
the measured per-receiver loss pattern; agents at the source and receivers
run whichever protocol the :mod:`repro.harness.registry` names; recovery
traffic is lossless by default (optionally Bernoulli-dropped at the
per-link rates for the lossy ablation).  Session exchange is lossless and
starts before the data so distances converge first.

Both kinds of loss injection — the trace replay and the lossy-recovery
ablation — are hop rules of a single :class:`~repro.faults.FaultInjector`,
the same primitive that executes declarative :class:`~repro.faults.FaultPlan`
schedules (link outages, crashes, duplication...) passed via ``faults=``.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any

from repro.faults import FaultInjector, FaultPlan, recovery_loss_rule, trace_drop_rule
from repro.harness.config import SimulationConfig
from repro.harness.registry import get_spec
from repro.metrics.collector import MetricsCollector
from repro.metrics.overhead import OverheadBreakdown, overhead_breakdown
from repro.metrics.stats import mean
from repro.net.network import Network
from repro.net.packet import PacketKind
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.spec.monitor import InvariantMonitor
from repro.srm.agent import SrmAgent
from repro.traces.model import SyntheticTrace


@dataclass
class RunResult:
    """Everything measured in one simulation run."""

    protocol: str
    trace_name: str
    config: SimulationConfig
    receivers: tuple[str, ...]
    source: str
    metrics: MetricsCollector
    overhead: OverheadBreakdown
    crossings_snapshot: dict[tuple[str, str], int]
    rtt_to_source: dict[str, float]
    unrecovered: dict[str, list[int]] = field(default_factory=dict)
    n_packets: int = 0
    total_losses: int = 0
    sim_time: float = 0.0
    events_processed: int = 0
    wall_time: float = 0.0
    #: Observability summary (tracer counters / profiler hot-spots) when the
    #: run was traced or profiled; None on an untraced run.
    obs: dict | None = None
    #: Fault-injection counters when the run carried a non-empty
    #: :class:`~repro.faults.FaultPlan`; None on a fault-free run (keeping
    #: fault-free summaries byte-identical to builds without fault support).
    faults: dict | None = None
    #: Per-workload metrics (offered load, expedited fraction, recovery
    #: latency percentiles) when the run was driven by an explicit
    #: :mod:`repro.workloads` spec; None on a default-schedule run (keeping
    #: those summaries byte-identical to builds without workload support).
    workload: dict | None = None
    #: Per-policy recovery-cache statistics when the run used an explicit
    #: :mod:`repro.core.cachelab` spec (``config.cache``); None on
    #: default-cache runs (keeping those summaries byte-identical to
    #: builds without cachelab support).
    cache: dict | None = None
    #: Membership-churn counters (joins/leaves/final membership) when the
    #: run carried a non-empty :mod:`repro.churn` spec; None on a
    #: static-membership run (keeping those summaries byte-identical to
    #: builds without churn support).
    churn: dict | None = None

    # ------------------------------------------------------------------
    # Figure-level derived quantities
    # ------------------------------------------------------------------
    def normalized_latencies(
        self, receiver: str, expedited: bool | None = None
    ) -> list[float]:
        """Recovery latencies of ``receiver`` in units of its RTT estimate
        to the source (the Figure 1/2 normalization)."""
        rtt = self.rtt_to_source[receiver]
        if rtt <= 0:
            return []
        return [
            latency / rtt
            for latency in self.metrics.recovery_latencies(receiver, expedited)
        ]

    def avg_normalized_recovery_time(
        self, receiver: str, expedited: bool | None = None
    ) -> float:
        """Per-receiver average normalized recovery time (Figure 1)."""
        return mean(self.normalized_latencies(receiver, expedited))

    def expedited_gap(self, receiver: str) -> float | None:
        """Figure 2: non-expedited minus expedited average normalized
        recovery time at ``receiver`` (None when either side is empty)."""
        expedited = self.normalized_latencies(receiver, expedited=True)
        fallback = self.normalized_latencies(receiver, expedited=False)
        if not expedited or not fallback:
            return None
        return mean(fallback) - mean(expedited)

    def request_counts(self, host: str) -> dict[str, int]:
        """Figure 3 bars: multicast vs expedited-unicast requests sent."""
        return {
            "multicast": self.metrics.sends_by_host_kind(host, PacketKind.RQST),
            "unicast": self.metrics.sends_by_host_kind(host, PacketKind.ERQST),
        }

    def reply_counts(self, host: str) -> dict[str, int]:
        """Figure 4 bars: fall-back vs expedited replies sent."""
        return {
            "multicast": self.metrics.sends_by_host_kind(host, PacketKind.REPL),
            "expedited": self.metrics.sends_by_host_kind(host, PacketKind.EREPL),
        }

    @property
    def hosts(self) -> tuple[str, ...]:
        """Source first (the paper's "receiver 0"), then the receivers."""
        return (self.source, *self.receivers)

    @property
    def recovered_losses(self) -> int:
        return sum(len(r) for r in self.metrics.recoveries.values())

    @property
    def unrecovered_losses(self) -> int:
        return sum(len(v) for v in self.unrecovered.values())


@dataclass
class Simulation:
    """A fully wired simulation, ready to run (exposed for tests)."""

    sim: Simulator
    network: Network
    agents: dict[str, SrmAgent]
    source_agent: SrmAgent
    trace: SyntheticTrace
    config: SimulationConfig
    metrics: MetricsCollector
    end_time: float
    fabric: Any | None = None
    monitor: InvariantMonitor | None = None
    faults: FaultInjector | None = None
    workload: Any | None = None
    churn: Any | None = None
    send_events: tuple = ()


def build_simulation(
    synthetic: SyntheticTrace,
    protocol: str,
    config: SimulationConfig,
    tracer=None,
    profiler=None,
    faults: FaultPlan | None = None,
    workload=None,
    churn: str = "",
) -> Simulation:
    """Wire up engine, network, loss injection, and agents for one run.

    ``protocol`` is resolved through the :mod:`repro.harness.registry`;
    anything registered there runs without touching this function.

    ``tracer`` / ``profiler`` are optional :mod:`repro.obs` hooks; they are
    deliberately not part of :class:`SimulationConfig` so that enabling them
    cannot perturb the run's configuration digest (and hence the run cache).
    ``faults`` is an optional :class:`~repro.faults.FaultPlan`; it *is* part
    of a run's identity and folds into :class:`~repro.exec.jobs.RunJob`
    digests instead (an empty/None plan leaves the run byte-identical to a
    plan-less build).
    ``workload`` is an optional :mod:`repro.workloads` spec string or
    compiled :class:`~repro.workloads.Workload`; like ``faults`` it is part
    of the run's identity, and ``None`` takes the original hard-coded
    source-paced schedule, byte for byte.
    ``churn`` is an optional :mod:`repro.churn` spec string (or compiled
    :class:`~repro.churn.ChurnPlan`); a non-empty spec installs a seeded
    join/leave process over the run, and the empty spec leaves the run
    byte-identical to a build without churn support.
    """
    spec = get_spec(protocol)
    plan = faults if faults is not None else FaultPlan()
    churn_plan = None
    if churn:
        from repro.churn import compile_churn

        churn_plan = compile_churn(churn) if isinstance(churn, str) else churn
        if churn_plan.empty:
            churn_plan = None
    if config.max_packets is not None:
        synthetic = synthetic.truncated(config.max_packets)
    trace = synthetic.trace
    tree = trace.tree
    if churn_plan is not None:
        # Churn patches the topology in place, and synthesized traces
        # (with their trees) are shared across runs — patch a private
        # clone so the trace stays pristine for the next run.
        tree = tree.clone()

    sim = Simulator()
    sim.tracer = tracer
    sim.profiler = profiler
    registry = RngRegistry(config.seed).fork(f"run:{protocol}:{trace.name}")
    metrics = MetricsCollector()
    network = Network(
        sim,
        tree,
        propagation_delay=config.propagation_delay,
        bandwidth_bps=config.bandwidth_bps,
        kernel=config.kernel,
    )
    # Loss injection (§4.3): the trace replay and the lossy-recovery
    # ablation are hop rules of the same injector that executes the plan.
    injector = FaultInjector(plan, sim, network, registry)
    injector.add_hop_rule(trace_drop_rule(synthetic.link_combos))
    if config.lossy_recovery:
        injector.add_hop_rule(
            recovery_loss_rule(synthetic.link_rates, registry.stream("recovery-loss"))
        )
    network.faults = injector

    fabric = spec.build_fabric(tree)

    def make_agent(host: str) -> SrmAgent:
        # One recipe for initial members and churn joiners alike: every
        # agent draws jitter from its own named stream, so membership
        # changes never perturb another host's randomness.
        kwargs: dict = dict(
            sim=sim,
            network=network,
            host_id=host,
            source=tree.source,
            params=config.params,
            rng=registry.stream(f"agent:{host}"),
            metrics=metrics,
            session_period=config.session_period,
            detect_on_request=config.detect_on_request,
        )
        kwargs.update(spec.extra_agent_kwargs(config))
        if fabric is not None:
            kwargs.update(fabric=fabric)
        return spec.agent_cls(**kwargs)

    agents: dict[str, SrmAgent] = {host: make_agent(host) for host in tree.hosts}

    hosts = tree.hosts
    if config.prime_distances:
        # Scale mode: the session exchange is O(n²) deliveries per
        # period, so at 10^4+ receivers we seed every estimator with an
        # analytic oracle and never start the session timers — the
        # oracle answers exactly what a lossless exchange converges to.
        from repro.srm.session import TreeDistanceOracle

        oracle: TreeDistanceOracle | None = TreeDistanceOracle(
            tree, config.propagation_delay
        )
        for agent in agents.values():
            agent.distances.prime(oracle)
    else:
        oracle = None
        # Stagger session starts across one period so they never
        # synchronize.
        for index, host in enumerate(hosts):
            offset = (index + 0.5) * config.session_period / (len(hosts) + 1)
            agents[host].start(session_offset=offset)

    # Schedule the whole data transmission: the legacy source-paced
    # schedule when no workload is given (kept verbatim — its floats are
    # golden-digest material), else the compiled workload's event stream.
    t0 = config.transmission_start
    source_agent = agents[tree.source]
    workload_obj = None
    send_events: tuple = ()
    if workload is None:
        for seq in range(trace.n_packets):
            sim.schedule_at(t0 + seq * trace.period, source_agent.send_data, seq)
        end_of_data = trace.n_packets * trace.period
    else:
        from repro.workloads import (
            compile_workload,
            events_horizon,
            schedule_events,
        )

        workload_obj = (
            compile_workload(workload) if isinstance(workload, str) else workload
        )
        send_events = workload_obj.events(trace, config.seed)
        schedule_events(sim, agents, send_events, t0)
        end_of_data = events_horizon(send_events, trace.period)

    monitor = None
    if config.verify_period is not None:
        monitor = InvariantMonitor(sim, agents, period=config.verify_period)
        monitor.start()

    end_time = t0 + end_of_data + config.drain_time
    injector.install(
        agents, end_time=end_time, on_host_crash=spec.crash_callback(fabric)
    )
    churn_engine = None
    if churn_plan is not None:
        from repro.churn import ChurnEngine

        joiner_factory = make_agent
        if oracle is not None:
            def joiner_factory(host: str) -> SrmAgent:
                agent = make_agent(host)
                agent.distances.prime(oracle)
                return agent

        churn_engine = ChurnEngine(churn_plan, sim, network, registry)
        churn_engine.install(
            agents,
            end_time=end_time,
            agent_factory=joiner_factory,
            source_agent=source_agent,
        )
    return Simulation(
        sim=sim,
        network=network,
        agents=agents,
        source_agent=source_agent,
        trace=synthetic,
        config=config,
        metrics=metrics,
        end_time=end_time,
        fabric=fabric,
        monitor=monitor,
        faults=injector,
        workload=workload_obj,
        churn=churn_engine,
        send_events=send_events,
    )


def run_trace(
    synthetic: SyntheticTrace,
    protocol: str,
    config: SimulationConfig | None = None,
    tracer=None,
    profiler=None,
    faults: FaultPlan | None = None,
    workload=None,
    churn: str = "",
) -> RunResult:
    """Run one protocol over one trace and collect the paper's metrics."""
    config = config or SimulationConfig()
    wall_start = _time.perf_counter()
    simulation = build_simulation(
        synthetic, protocol, config, tracer=tracer, profiler=profiler,
        faults=faults, workload=workload, churn=churn,
    )
    sim = simulation.sim
    sim.run(until=simulation.end_time)
    if simulation.monitor is not None:
        simulation.monitor.check_now()  # final sweep at quiescence
        simulation.monitor.stop()
    for agent in simulation.agents.values():
        agent.stop()

    trace = simulation.trace.trace
    metrics = simulation.metrics
    for host, count in _finalize_unrecovered(simulation).items():
        metrics.unrecovered[host] = count

    rtts = {
        host: agent.rtt_to_source()
        for host, agent in simulation.agents.items()
        if host != trace.tree.source
    }
    obs = None
    if tracer is not None or profiler is not None:
        obs = {}
        if tracer is not None:
            tracer.close()
            obs["trace"] = tracer.summary()
        if profiler is not None:
            obs["profile"] = profiler.summary()
    return RunResult(
        protocol=protocol,
        trace_name=trace.name,
        config=config,
        receivers=trace.tree.receivers,
        source=trace.tree.source,
        metrics=metrics,
        overhead=overhead_breakdown(simulation.network.crossings),
        crossings_snapshot=simulation.network.crossings.snapshot(),
        rtt_to_source=rtts,
        unrecovered={
            host: agent.unrecovered_losses()
            for host, agent in simulation.agents.items()
            if agent.unrecovered_losses()
        },
        n_packets=trace.n_packets,
        total_losses=trace.total_losses,
        sim_time=sim.now,
        events_processed=sim.events_processed,
        wall_time=_time.perf_counter() - wall_start,
        obs=obs,
        faults=(
            simulation.faults.stats()
            if simulation.faults is not None and not simulation.faults.plan.empty
            else None
        ),
        workload=(
            _workload_stats(simulation, metrics)
            if simulation.workload is not None
            else None
        ),
        cache=_cache_stats(simulation, metrics) if config.cache else None,
        churn=(
            simulation.churn.stats() if simulation.churn is not None else None
        ),
    )


def _workload_stats(simulation: Simulation, metrics: MetricsCollector) -> dict:
    from repro.workloads import workload_run_stats

    return workload_run_stats(
        simulation.workload, simulation.send_events, metrics, simulation.trace.trace
    )


def _cache_stats(simulation: Simulation, metrics: MetricsCollector) -> dict:
    """Aggregate per-policy cache counters across every agent holding
    per-source caches (CESRM variants), plus the run's expedited
    fraction — the y-axis of the policy frontier.

    Only called for runs with an explicit ``config.cache`` spec, so
    default summaries never grow this block.
    """
    from repro.core.cachelab import compile_cache_policy

    totals = {
        "inserts": 0,
        "improvements": 0,
        "rejects": 0,
        "capacity_evictions": 0,
        "replier_evictions": 0,
        "expirations": 0,
        "lookups": 0,
        "hits": 0,
    }
    occupancy: dict[str, int] = {}
    n_caches = 0
    for agent in simulation.agents.values():
        for source, cache in sorted(getattr(agent, "caches", {}).items()):
            n_caches += 1
            stats = cache.stats()
            for key in totals:
                totals[key] += stats[key]
            occupancy[source] = occupancy.get(source, 0) + stats["entries"]
    expedited = fallback = 0
    for records in metrics.recoveries.values():
        for record in records:
            if record.expedited:
                expedited += 1
            else:
                fallback += 1
    recoveries = expedited + fallback
    lookups = totals["lookups"]
    return {
        "spec": compile_cache_policy(simulation.config.cache).spec,
        "caches": n_caches,
        **totals,
        "evictions": totals["capacity_evictions"] + totals["replier_evictions"],
        "hit_rate": round(totals["hits"] / lookups, 6) if lookups else 0.0,
        "expedited_fraction": (
            round(expedited / recoveries, 6) if recoveries else 0.0
        ),
        "occupancy": occupancy,
    }


def _finalize_unrecovered(simulation: Simulation) -> dict[str, int]:
    out: dict[str, int] = {}
    for host, agent in simulation.agents.items():
        pending = agent.unrecovered_losses()
        if pending:
            out[host] = len(pending)
    return out


