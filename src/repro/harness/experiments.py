"""Drivers that regenerate every table and figure of the paper's §4.

Each ``figureN`` / ``table1`` function returns plain data (dataclasses of
lists/dicts) that :mod:`repro.harness.report` renders as ASCII and the
benchmarks print.  An :class:`ExperimentContext` memoizes synthesized
traces and simulation runs so that figures sharing runs (1–4 all use the
same six traces) never simulate twice; it executes runs through the
:mod:`repro.exec` engine, so batches fan out over a process pool
(``jobs > 1``) and completed runs persist in an on-disk content-addressed
cache (``cache``) across invocations.  Every driver declares its full run
set up front via :meth:`ExperimentContext.prefetch`, which is what lets
the engine parallelize.

Trace length: real replays are 17k–149k packets; by default experiments
replay the first ``DEFAULT_MAX_PACKETS`` packets (loss targets scale
proportionally) so the whole suite stays laptop-fast.  Set the environment
variable ``REPRO_FULL_TRACES=1`` — or pass ``max_packets=None`` — for
full-length replays.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable

from repro.exec.cache import RunCache
from repro.exec.jobs import RunJob, synthesize_job_trace
from repro.exec.pool import ExecutionEngine
from repro.exec.summary import RunSummary
from repro.faults import FaultPlan
from repro.harness.analysis import (
    EXPEDITED_GAP_BAND_RTT,
    SRM_FIRST_ROUND_BAND_RTT,
    LatencyModel,
)
from repro.harness.config import SimulationConfig
from repro.harness.runner import RunResult, run_trace
from repro.metrics.stats import mean
from repro.traces.model import SyntheticTrace
from repro.traces.yajnik import FIGURE_TRACES, YAJNIK_TRACES

#: Default per-trace replay length for experiments (None = full trace).
DEFAULT_MAX_PACKETS: int | None = 3000


def default_max_packets() -> int | None:
    """The replay cap honouring ``REPRO_FULL_TRACES`` / ``REPRO_MAX_PACKETS``."""
    if os.environ.get("REPRO_FULL_TRACES", "") not in ("", "0"):
        return None
    override = os.environ.get("REPRO_MAX_PACKETS", "")
    if override:
        return int(override)
    return DEFAULT_MAX_PACKETS


#: A run request: ``(trace, protocol)`` with the context's config, or
#: ``(trace, protocol, config)`` with an explicit one.
RunSpec = tuple


class ExperimentContext:
    """Shared state for a batch of experiments: one config, one seed, and
    memoized traces and runs, executed through the :mod:`repro.exec`
    engine (process-pool fan-out + persistent run cache)."""

    def __init__(
        self,
        config: SimulationConfig | None = None,
        seed: int = 0,
        max_packets: int | None | str = "default",
        jobs: int = 1,
        cache: RunCache | None = None,
        progress=None,
        faults: FaultPlan | None = None,
        workload: str = "",
        cache_policy: str = "",
        churn: str = "",
    ) -> None:
        if max_packets == "default":
            max_packets = default_max_packets()
        self.max_packets = max_packets  # type: ignore[assignment]
        self.seed = seed
        self.faults = faults if faults is not None else FaultPlan()
        self.workload = workload
        if workload:
            # Fail on the driving process, before any jobs are built.
            from repro.workloads import compile_workload

            compile_workload(workload)
        self.churn = churn
        if churn:
            from repro.churn import compile_churn

            compile_churn(churn)
        # ``cache`` is already taken by the RunCache handle, so the recovery
        # cache-policy spec rides in as ``cache_policy`` and folds into the
        # config (where SimulationConfig validates it eagerly).
        self.cache_policy = cache_policy
        self.config = (config or SimulationConfig()).with_(
            seed=seed, max_packets=self.max_packets
        )
        if cache_policy:
            self.config = self.config.with_(cache=cache_policy)
        self.engine = ExecutionEngine(jobs=jobs, cache=cache, progress=progress)
        self._traces: dict[str, SyntheticTrace] = {}
        self._runs: dict[tuple[str, str, SimulationConfig], RunResult] = {}

    def trace(self, name: str) -> SyntheticTrace:
        cached = self._traces.get(name)
        if cached is None:
            cached = synthesize_job_trace(
                name, seed=self.seed, max_packets=self.max_packets
            )
            self._traces[name] = cached
        return cached

    def job(
        self, name: str, protocol: str, config: SimulationConfig | None = None
    ) -> RunJob:
        """The declarative spec for one of this context's runs."""
        return RunJob(
            trace=name,
            protocol=protocol,
            config=config or self.config,
            trace_seed=self.seed,
            trace_max_packets=self.max_packets,
            faults=self.faults,
            workload=self.workload,
            churn=self.churn,
        )

    def _execute_local(self, job: RunJob) -> RunSummary:
        """Serial in-process executor reusing the memoized trace."""
        if (
            job.trace_seed == self.seed
            and job.trace_max_packets == self.max_packets
        ):
            synthetic = self.trace(job.trace)
        else:  # pragma: no cover - jobs are always built via self.job()
            synthetic = synthesize_job_trace(
                job.trace, seed=job.trace_seed, max_packets=job.trace_max_packets
            )
        return RunSummary.from_result(
            run_trace(
                synthetic,
                job.protocol,
                job.config,
                faults=job.faults,
                workload=job.workload or None,
                churn=job.churn,
            )
        )

    def prefetch(self, specs: Iterable[RunSpec]) -> None:
        """Execute (and memoize) a batch of runs in one engine pass, so
        cache misses fan out over the process pool together."""
        keys: list[tuple[str, str, SimulationConfig]] = []
        jobs: list[RunJob] = []
        for spec in specs:
            name, protocol, config = spec if len(spec) == 3 else (*spec, None)
            config = config or self.config
            key = (name, protocol, config)
            if key in self._runs or key in keys:
                continue
            keys.append(key)
            jobs.append(self.job(name, protocol, config))
        if not jobs:
            return
        results = self.engine.execute(jobs, local_executor=self._execute_local)
        for key, result in zip(keys, results):
            self._runs[key] = result

    def run(
        self, name: str, protocol: str, config: SimulationConfig | None = None
    ) -> RunResult:
        config = config or self.config
        key = (name, protocol, config)
        cached = self._runs.get(key)
        if cached is None:
            self.prefetch([(name, protocol, config)])
            cached = self._runs[key]
        return cached


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Row:
    index: int
    name: str
    n_receivers: int
    tree_depth: int
    period_ms: int
    target_packets: int
    target_losses: int
    synthesized_packets: int
    synthesized_losses: int

    @property
    def loss_error(self) -> float:
        """Relative deviation of synthesized losses from the (scaled)
        target."""
        if self.target_losses == 0:
            return 0.0
        return abs(self.synthesized_losses - self.target_losses) / self.target_losses


def table1(ctx: ExperimentContext) -> list[Table1Row]:
    """Reproduce Table 1: synthesize each trace and report target vs
    realized loss volumes (targets scale with any replay truncation)."""
    rows = []
    for meta in YAJNIK_TRACES:
        synthetic = ctx.trace(meta.name)
        trace = synthetic.trace
        scale = trace.n_packets / meta.n_packets
        rows.append(
            Table1Row(
                index=meta.index,
                name=meta.name,
                n_receivers=meta.n_receivers,
                tree_depth=meta.tree_depth,
                period_ms=meta.period_ms,
                target_packets=trace.n_packets,
                target_losses=max(1, round(meta.n_losses * scale)),
                synthesized_packets=trace.n_packets,
                synthesized_losses=trace.total_losses,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Figure 1 — per-receiver average normalized recovery times
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure1Trace:
    trace: str
    receivers: tuple[str, ...]
    srm: list[float]
    cesrm: list[float]

    @property
    def reduction(self) -> float:
        """CESRM's mean relative latency reduction across receivers."""
        pairs = [
            (s, c) for s, c in zip(self.srm, self.cesrm) if s > 0
        ]
        if not pairs:
            return 0.0
        return mean([1.0 - c / s for s, c in pairs])


def figure1(
    ctx: ExperimentContext, traces: tuple[str, ...] = FIGURE_TRACES
) -> list[Figure1Trace]:
    """Figure 1: per-receiver average normalized recovery time (RTT units),
    SRM vs CESRM, for the six typical traces."""
    ctx.prefetch((n, p) for n in traces for p in ("srm", "cesrm"))
    out = []
    for name in traces:
        srm = ctx.run(name, "srm")
        cesrm = ctx.run(name, "cesrm")
        receivers = srm.receivers
        out.append(
            Figure1Trace(
                trace=name,
                receivers=receivers,
                srm=[srm.avg_normalized_recovery_time(r) for r in receivers],
                cesrm=[cesrm.avg_normalized_recovery_time(r) for r in receivers],
            )
        )
    return out


# ----------------------------------------------------------------------
# Figure 2 — expedited vs non-expedited latency gap
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure2Trace:
    trace: str
    receivers: tuple[str, ...]
    #: Per-receiver (non-expedited − expedited) average normalized recovery
    #: time; None where a receiver lacks one of the two kinds.
    gaps: list[float | None]

    @property
    def mean_gap(self) -> float:
        values = [g for g in self.gaps if g is not None]
        return mean(values)


def figure2(
    ctx: ExperimentContext, traces: tuple[str, ...] = FIGURE_TRACES
) -> list[Figure2Trace]:
    """Figure 2: per-receiver difference between non-expedited and
    expedited average normalized recovery times under CESRM."""
    ctx.prefetch((n, "cesrm") for n in traces)
    out = []
    for name in traces:
        cesrm = ctx.run(name, "cesrm")
        out.append(
            Figure2Trace(
                trace=name,
                receivers=cesrm.receivers,
                gaps=[cesrm.expedited_gap(r) for r in cesrm.receivers],
            )
        )
    return out


# ----------------------------------------------------------------------
# Figures 3 & 4 — per-receiver request / reply packet counts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PacketCountTrace:
    trace: str
    hosts: tuple[str, ...]  # source ("receiver 0") first
    srm: list[int]
    cesrm_multicast: list[int]
    cesrm_expedited: list[int]

    @property
    def srm_total(self) -> int:
        return sum(self.srm)

    @property
    def cesrm_total(self) -> int:
        return sum(self.cesrm_multicast) + sum(self.cesrm_expedited)


def figure3(
    ctx: ExperimentContext, traces: tuple[str, ...] = FIGURE_TRACES
) -> list[PacketCountTrace]:
    """Figure 3: request packets sent per host — SRM multicast requests vs
    CESRM's multicast (fall-back) + unicast (expedited) requests."""
    return _packet_counts(ctx, traces, which="requests")


def figure4(
    ctx: ExperimentContext, traces: tuple[str, ...] = FIGURE_TRACES
) -> list[PacketCountTrace]:
    """Figure 4: reply packets sent per host — SRM replies vs CESRM's
    fall-back + expedited replies."""
    return _packet_counts(ctx, traces, which="replies")


def _packet_counts(
    ctx: ExperimentContext, traces: tuple[str, ...], which: str
) -> list[PacketCountTrace]:
    ctx.prefetch((n, p) for n in traces for p in ("srm", "cesrm"))
    out = []
    for name in traces:
        srm = ctx.run(name, "srm")
        cesrm = ctx.run(name, "cesrm")
        hosts = srm.hosts
        if which == "requests":
            srm_counts = [srm.request_counts(h)["multicast"] for h in hosts]
            ces_multi = [cesrm.request_counts(h)["multicast"] for h in hosts]
            ces_exp = [cesrm.request_counts(h)["unicast"] for h in hosts]
        else:
            srm_counts = [srm.reply_counts(h)["multicast"] for h in hosts]
            ces_multi = [cesrm.reply_counts(h)["multicast"] for h in hosts]
            ces_exp = [cesrm.reply_counts(h)["expedited"] for h in hosts]
        out.append(
            PacketCountTrace(
                trace=name,
                hosts=hosts,
                srm=srm_counts,
                cesrm_multicast=ces_multi,
                cesrm_expedited=ces_exp,
            )
        )
    return out


# ----------------------------------------------------------------------
# Figure 5 — expedited success and transmission overhead, all 14 traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure5Row:
    trace: str
    #: Fig. 5a: 100 · (#expedited replies / #expedited requests).
    expedited_success_pct: float
    #: Fig. 5b: CESRM overhead categories as % of SRM's total overhead.
    retransmissions_pct: float
    multicast_control_pct: float
    unicast_control_pct: float

    @property
    def total_pct(self) -> float:
        return (
            self.retransmissions_pct
            + self.multicast_control_pct
            + self.unicast_control_pct
        )


def figure5(
    ctx: ExperimentContext, traces: tuple[str, ...] | None = None
) -> list[Figure5Row]:
    """Figure 5: per-trace expedited success percentage and CESRM's
    transmission overhead relative to SRM's, for all 14 traces."""
    names = traces or tuple(meta.name for meta in YAJNIK_TRACES)
    ctx.prefetch((n, p) for n in names for p in ("srm", "cesrm"))
    rows = []
    for name in names:
        srm = ctx.run(name, "srm")
        cesrm = ctx.run(name, "cesrm")
        pct = cesrm.overhead.as_percent_of(srm.overhead)
        rows.append(
            Figure5Row(
                trace=name,
                expedited_success_pct=100.0 * cesrm.metrics.expedited_success_rate,
                retransmissions_pct=pct["retransmissions"],
                multicast_control_pct=pct["multicast_control"],
                unicast_control_pct=pct["unicast_control"],
            )
        )
    return rows


# ----------------------------------------------------------------------
# §3.4 — analytical model vs simulation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Section34Result:
    model_non_expedited_rtt: float
    model_expedited_rtt: float
    model_gap_rtt: float
    simulated_srm_avg_rtt: dict[str, float]
    simulated_gap_rtt: dict[str, float]
    srm_band: tuple[float, float] = SRM_FIRST_ROUND_BAND_RTT
    gap_band: tuple[float, float] = EXPEDITED_GAP_BAND_RTT


def section_3_4(
    ctx: ExperimentContext, traces: tuple[str, ...] = FIGURE_TRACES
) -> Section34Result:
    """Cross-check Eq. (1)/(2) against the simulated averages (§3.4/§4.4)."""
    model = LatencyModel(
        params=ctx.config.params,
        reorder_delay_rtt=0.0,
    )
    ctx.prefetch((n, p) for n in traces for p in ("srm", "cesrm"))
    srm_avgs = {}
    gaps = {}
    for name in traces:
        srm = ctx.run(name, "srm")
        cesrm = ctx.run(name, "cesrm")
        srm_avgs[name] = mean(
            [srm.avg_normalized_recovery_time(r) for r in srm.receivers]
        )
        trace_gaps = [g for g in (cesrm.expedited_gap(r) for r in cesrm.receivers) if g is not None]
        gaps[name] = mean(trace_gaps)
    return Section34Result(
        model_non_expedited_rtt=model.non_expedited_rtt,
        model_expedited_rtt=model.expedited_rtt,
        model_gap_rtt=model.expected_gap_rtt,
        simulated_srm_avg_rtt=srm_avgs,
        simulated_gap_rtt=gaps,
    )


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AblationRow:
    label: str
    trace: str
    avg_normalized_latency: float
    expedited_success_pct: float
    retransmission_units: int
    control_units: int
    unrecovered: int


def _ablation_row(label: str, result: RunResult) -> AblationRow:
    lat = mean([result.avg_normalized_recovery_time(r) for r in result.receivers])
    return AblationRow(
        label=label,
        trace=result.trace_name,
        avg_normalized_latency=lat,
        expedited_success_pct=100.0 * result.metrics.expedited_success_rate,
        retransmission_units=result.overhead.retransmissions,
        control_units=result.overhead.control,
        unrecovered=result.unrecovered_losses,
    )


def ablation_policy(
    ctx: ExperimentContext, traces: tuple[str, ...] = FIGURE_TRACES
) -> list[AblationRow]:
    """Most-recent-loss vs most-frequent-loss selection (§3.2/§4.3)."""
    specs = [
        (name, "cesrm", ctx.config.with_(policy=policy))
        for name in traces
        for policy in ("most-recent", "most-frequent")
    ]
    ctx.prefetch(specs)
    return [
        _ablation_row(cfg.policy, ctx.run(name, protocol, cfg))
        for name, protocol, cfg in specs
    ]


def ablation_cache_capacity(
    ctx: ExperimentContext,
    capacities: tuple[int, ...] = (1, 2, 4, 16, 64),
    trace: str = "WRN951113",
) -> list[AblationRow]:
    """Cache size sweep: the most-recent policy needs only one entry."""
    specs = [
        (trace, "cesrm", ctx.config.with_(cache_capacity=capacity))
        for capacity in capacities
    ]
    ctx.prefetch(specs)
    return [
        _ablation_row(
            f"capacity={cfg.cache_capacity}", ctx.run(name, protocol, cfg)
        )
        for name, protocol, cfg in specs
    ]


def ablation_reorder_delay(
    ctx: ExperimentContext,
    delays: tuple[float, ...] = (0.0, 0.01, 0.05, 0.1, 0.25),
    trace: str = "WRN951113",
) -> list[AblationRow]:
    """REORDER-DELAY sweep: expedited latency grows with the guard."""
    specs = [
        (trace, "cesrm", ctx.config.with_(reorder_delay=delay))
        for delay in delays
    ]
    ctx.prefetch(specs)
    return [
        _ablation_row(
            f"reorder={cfg.reorder_delay * 1000:.0f}ms",
            ctx.run(name, protocol, cfg),
        )
        for name, protocol, cfg in specs
    ]


def ablation_lossy_recovery(
    ctx: ExperimentContext, traces: tuple[str, ...] = FIGURE_TRACES[:3]
) -> list[AblationRow]:
    """Recovery packets dropped at the per-link trace rates (§4.3's
    variation, reported in [10]): latencies grow slightly, CESRM's
    advantage persists."""
    specs = [
        (name, protocol, ctx.config.with_(lossy_recovery=lossy))
        for name in traces
        for lossy in (False, True)
        for protocol in ("srm", "cesrm")
    ]
    ctx.prefetch(specs)
    return [
        _ablation_row(
            f"{protocol}/{'lossy' if cfg.lossy_recovery else 'lossless'}",
            ctx.run(name, protocol, cfg),
        )
        for name, protocol, cfg in specs
    ]


def ablation_link_delay(
    ctx: ExperimentContext,
    delays: tuple[float, ...] = (0.010, 0.020, 0.030),
    trace: str = "WRN951113",
) -> list[AblationRow]:
    """§4.3 ran 10/20/30 ms links and saw very similar (normalized)
    results; this sweep reproduces that insensitivity."""
    specs = [
        (trace, protocol, ctx.config.with_(propagation_delay=delay))
        for delay in delays
        for protocol in ("srm", "cesrm")
    ]
    ctx.prefetch(specs)
    return [
        _ablation_row(
            f"{protocol}/{cfg.propagation_delay * 1000:.0f}ms",
            ctx.run(name, protocol, cfg),
        )
        for name, protocol, cfg in specs
    ]


@dataclass(frozen=True)
class RouterAssistRow:
    trace: str
    protocol: str
    retransmission_units: int
    expedited_reply_crossings: int
    avg_normalized_latency: float


def router_assist_comparison(
    ctx: ExperimentContext, traces: tuple[str, ...] = FIGURE_TRACES
) -> list[RouterAssistRow]:
    """§3.3: router-assisted CESRM localizes expedited replies (subcast),
    cutting retransmission exposure versus plain CESRM at equal latency."""
    ctx.prefetch(
        (n, p) for n in traces for p in ("cesrm", "cesrm-router")
    )
    rows = []
    for name in traces:
        for protocol in ("cesrm", "cesrm-router"):
            result = ctx.run(name, protocol)
            erepl = sum(
                n
                for (kind, _), n in result.crossings_snapshot.items()
                if kind == "erepl"
            )
            rows.append(
                RouterAssistRow(
                    trace=name,
                    protocol=protocol,
                    retransmission_units=result.overhead.retransmissions,
                    expedited_reply_crossings=erepl,
                    avg_normalized_latency=mean(
                        [
                            result.avg_normalized_recovery_time(r)
                            for r in result.receivers
                        ]
                    ),
                )
            )
    return rows
