"""The §3.4 closed-form recovery-latency model.

With ``d`` an upper bound on the one-way inter-host delay (``RTT = 2d``):

* Eq. (1): a successful **first-round non-expedited** recovery takes about

      (C1 + C2/2)·d  +  d  +  (D1 + D2/2)·d  +  d

  (request delay at the interval midpoint, request propagation, reply delay
  at the midpoint, reply propagation);

* Eq. (2): a successful **expedited** recovery takes about

      REORDER-DELAY + RTT

For the paper's parameters (C1=C2=2, D1=D2=1) Eq. (1) gives ``6.5·d =
3.25·RTT``, so expedited recoveries save roughly ``2.25·RTT`` when
REORDER-DELAY is negligible.  §4.4 then observes simulated SRM first-round
averages between 1.5 and 3.25 RTT and expedited/non-expedited gaps between
1 and 2.5 RTT — which ``bench_analysis`` cross-checks against simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.srm.constants import SrmParams


@dataclass(frozen=True)
class LatencyModel:
    """Closed-form §3.4 latency bounds, in RTT units (RTT = 2d)."""

    params: SrmParams
    reorder_delay_rtt: float = 0.0  # REORDER-DELAY expressed in RTTs

    @property
    def non_expedited_rtt(self) -> float:
        """Eq. (1) in RTT units: ((C1 + C2/2) + 1 + (D1 + D2/2) + 1) / 2."""
        p = self.params
        in_d = (p.c1 + 0.5 * p.c2) + 1.0 + (p.d1 + 0.5 * p.d2) + 1.0
        return in_d / 2.0

    @property
    def expedited_rtt(self) -> float:
        """Eq. (2) in RTT units: REORDER-DELAY + 1 RTT."""
        return self.reorder_delay_rtt + 1.0

    @property
    def expected_gap_rtt(self) -> float:
        """The predicted expedited-vs-non-expedited latency gap."""
        return self.non_expedited_rtt - self.expedited_rtt

    def describe(self) -> dict[str, float]:
        return {
            "non_expedited_rtt": self.non_expedited_rtt,
            "expedited_rtt": self.expedited_rtt,
            "expected_gap_rtt": self.expected_gap_rtt,
        }


def paper_latency_model() -> LatencyModel:
    """The model under the paper's parameter values: 3.25 / 1.0 / 2.25 RTT."""
    return LatencyModel(params=SrmParams())


#: The §4.4 empirical bands the simulations should land in.
SRM_FIRST_ROUND_BAND_RTT: tuple[float, float] = (1.5, 3.25)
EXPEDITED_GAP_BAND_RTT: tuple[float, float] = (1.0, 2.5)
