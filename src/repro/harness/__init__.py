"""Experiment harness: per-trace simulation runs and paper reproductions.

* :mod:`repro.harness.config` — one immutable config for a run (§4.3's
  simulation setup is the default).
* :mod:`repro.harness.specstr` — the shared ``family:key=value`` spec
  grammar every pluggable surface (workloads, topologies, faults, cache
  policies) parses through.
* :mod:`repro.harness.registries` — the generic name -> spec registry
  those surfaces register into.
* :mod:`repro.harness.registry` — the pluggable protocol-session registry
  (:class:`ProtocolSpec`); every protocol the harness runs ships through it.
* :mod:`repro.harness.runner` — builds a simulation (tree, network,
  agents, fault injection) and runs it to completion.
* :mod:`repro.harness.experiments` — drivers that regenerate every table
  and figure of §4, plus the ablations DESIGN.md lists.
* :mod:`repro.harness.analysis` — the §3.4 closed-form latency model.
* :mod:`repro.harness.report` — ASCII rendering of tables and bar series.
* :mod:`repro.harness.cli` — the ``cesrm`` command-line entry point.

Exports resolve lazily (PEP 562): protocol specs reference agent classes
in :mod:`repro.core`, and :mod:`repro.core.cachelab` uses the shared
grammar/registry modules here — loading them on first attribute access
instead of at package import keeps that mutual dependency acyclic.
"""

import importlib
from typing import Any

#: name -> (module, attribute); resolved on first access.
_EXPORTS = {
    "SimulationConfig": ("repro.harness.config", "SimulationConfig"),
    "ProtocolSpec": ("repro.harness.registry", "ProtocolSpec"),
    "all_specs": ("repro.harness.registry", "all_specs"),
    "available_protocols": ("repro.harness.registry", "available_protocols"),
    "get_spec": ("repro.harness.registry", "get_spec"),
    "register": ("repro.harness.registry", "register"),
    "unregister": ("repro.harness.registry", "unregister"),
    "RunResult": ("repro.harness.runner", "RunResult"),
    "run_trace": ("repro.harness.runner", "run_trace"),
    "build_simulation": ("repro.harness.runner", "build_simulation"),
}

__all__ = [
    "SimulationConfig",
    "ProtocolSpec",
    "all_specs",
    "available_protocols",
    "get_spec",
    "register",
    "unregister",
    "RunResult",
    "run_trace",
    "build_simulation",
]


def __getattr__(name: str) -> Any:
    # Deprecated shim: forwards to repro.harness.config, which warns and
    # resolves the live registry.
    if name == "PROTOCOLS":
        from repro.harness import config

        return config.PROTOCOLS
    target = _EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(target[0]), target[1])
    globals()[name] = value  # cache so __getattr__ runs once per name
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
