"""Experiment harness: per-trace simulation runs and paper reproductions.

* :mod:`repro.harness.config` — one immutable config for a run (§4.3's
  simulation setup is the default).
* :mod:`repro.harness.registry` — the pluggable protocol-session registry
  (:class:`ProtocolSpec`); every protocol the harness runs ships through it.
* :mod:`repro.harness.runner` — builds a simulation (tree, network,
  agents, fault injection) and runs it to completion.
* :mod:`repro.harness.experiments` — drivers that regenerate every table
  and figure of §4, plus the ablations DESIGN.md lists.
* :mod:`repro.harness.analysis` — the §3.4 closed-form latency model.
* :mod:`repro.harness.report` — ASCII rendering of tables and bar series.
* :mod:`repro.harness.cli` — the ``cesrm`` command-line entry point.
"""

from typing import Any

from repro.harness.config import SimulationConfig
from repro.harness.registry import (
    ProtocolSpec,
    all_specs,
    available_protocols,
    get_spec,
    register,
    unregister,
)
from repro.harness.runner import RunResult, run_trace, build_simulation

__all__ = [
    "SimulationConfig",
    "ProtocolSpec",
    "all_specs",
    "available_protocols",
    "get_spec",
    "register",
    "unregister",
    "RunResult",
    "run_trace",
    "build_simulation",
]


def __getattr__(name: str) -> Any:
    # Deprecated shim: forwards to repro.harness.config, which warns and
    # resolves the live registry.
    if name == "PROTOCOLS":
        from repro.harness import config

        return config.PROTOCOLS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
