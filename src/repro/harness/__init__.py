"""Experiment harness: per-trace simulation runs and paper reproductions.

* :mod:`repro.harness.config` — one immutable config for a run (§4.3's
  simulation setup is the default).
* :mod:`repro.harness.runner` — builds a simulation (tree, network,
  agents, trace-driven loss injection) and runs it to completion.
* :mod:`repro.harness.experiments` — drivers that regenerate every table
  and figure of §4, plus the ablations DESIGN.md lists.
* :mod:`repro.harness.analysis` — the §3.4 closed-form latency model.
* :mod:`repro.harness.report` — ASCII rendering of tables and bar series.
* :mod:`repro.harness.cli` — the ``cesrm`` command-line entry point.
"""

from repro.harness.config import SimulationConfig, PROTOCOLS
from repro.harness.runner import RunResult, run_trace, build_simulation

__all__ = [
    "SimulationConfig",
    "PROTOCOLS",
    "RunResult",
    "run_trace",
    "build_simulation",
]
