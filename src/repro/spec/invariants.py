"""The safety invariants of the SRM/CESRM agent state machines.

Each invariant is a pure predicate over one agent's state (plus the
simulation clock), derived from the protocol text:

* **request-iff-missing** — a request state exists only for packets the
  host has not received (§2.1: requests recover *missing* packets; the
  state is deleted the instant the packet arrives);
* **received-within-max** — a host's ``max_seq`` is the maximum of its
  received set and reported gaps (stream bookkeeping consistency);
* **ever-lost-superset** — every packet under active recovery was marked
  as lost at detection time;
* **no-scheduled-reply-for-missing** — a host never schedules a repair
  reply for a packet it cannot retransmit (§2.2: only hosts that sent or
  received ``p`` reply);
* **backoff-nonnegative-monotone-interval** — back-off counts stay within
  the configured cap;
* **cache-packets-were-lost** (CESRM) — every cached recovery tuple
  describes a packet this host actually lost (§3.1's first update rule);
* **cache-capacity** (CESRM) — per-source caches never exceed capacity;
* **expedited-iff-missing** (CESRM) — a pending expedited request exists
  only for packets still missing and under recovery;
* **failed-is-silent** — a crashed host keeps no armed timers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.agent import CesrmAgent
from repro.srm.agent import SrmAgent


@dataclass(frozen=True)
class Invariant:
    """A named predicate over one agent's state."""

    name: str
    check: Callable[[SrmAgent, float], str | None]
    """Returns None when the invariant holds, else a violation message."""


def _request_iff_missing(agent: SrmAgent, now: float) -> str | None:
    for src in agent.known_sources():
        state = agent.source_state(src)
        for seq in state.request_states:
            if state.stream.has(seq):
                return (
                    f"{agent.host_id}: request state for received packet "
                    f"{src}:{seq}"
                )
    return None


def _received_within_max(agent: SrmAgent, now: float) -> str | None:
    for src in agent.known_sources():
        stream = agent.source_state(src).stream
        if stream.received and max(stream.received) > stream.max_seq:
            return (
                f"{agent.host_id}: received beyond max_seq for {src} "
                f"({max(stream.received)} > {stream.max_seq})"
            )
    return None


def _ever_lost_superset(agent: SrmAgent, now: float) -> str | None:
    for src in agent.known_sources():
        state = agent.source_state(src)
        missing = set(state.request_states) - state.stream.ever_lost
        if missing:
            return (
                f"{agent.host_id}: recovery without loss record for "
                f"{src}:{sorted(missing)[:3]}"
            )
    return None


def _no_scheduled_reply_for_missing(agent: SrmAgent, now: float) -> str | None:
    for src in agent.known_sources():
        state = agent.source_state(src)
        for seq, reply in state.reply_states.items():
            if reply.scheduled() and not state.stream.has(seq):
                return (
                    f"{agent.host_id}: reply scheduled for missing packet "
                    f"{src}:{seq}"
                )
    return None


def _backoff_within_cap(agent: SrmAgent, now: float) -> str | None:
    for src in agent.known_sources():
        for seq, request in agent.source_state(src).request_states.items():
            if request.backoff < 0:
                return f"{agent.host_id}: negative backoff at {src}:{seq}"
    return None


def _cache_packets_were_lost(agent: SrmAgent, now: float) -> str | None:
    if not isinstance(agent, CesrmAgent):
        return None
    for src, cache in agent.caches.items():
        stream = agent.source_state(src).stream
        for entry in cache.entries():
            if entry.seqno not in stream.ever_lost:
                return (
                    f"{agent.host_id}: cached tuple for never-lost packet "
                    f"{src}:{entry.seqno}"
                )
    return None


def _cache_capacity(agent: SrmAgent, now: float) -> str | None:
    if not isinstance(agent, CesrmAgent):
        return None
    for src, cache in agent.caches.items():
        if len(cache) > cache.capacity:
            return f"{agent.host_id}: cache over capacity for {src}"
    return None


def _expedited_iff_missing(agent: SrmAgent, now: float) -> str | None:
    if not isinstance(agent, CesrmAgent):
        return None
    for (src, seq), (timer, _) in agent._expedited.items():
        if not timer.armed:
            continue
        state = agent.source_state(src)
        if state.stream.has(seq):
            return (
                f"{agent.host_id}: expedited request pending for received "
                f"packet {src}:{seq}"
            )
    return None


def _failed_is_silent(agent: SrmAgent, now: float) -> str | None:
    if not agent.failed:
        return None
    if agent._session_timer.running:
        return f"{agent.host_id}: failed host with running session timer"
    for src in agent.known_sources():
        state = agent.source_state(src)
        for seq, request in state.request_states.items():
            if request.timer.armed:
                return f"{agent.host_id}: failed host with armed request timer"
        for seq, reply in state.reply_states.items():
            if reply.timer is not None and reply.timer.armed:
                return f"{agent.host_id}: failed host with armed reply timer"
    return None


#: Every invariant, in check order.
ALL_INVARIANTS: tuple[Invariant, ...] = (
    Invariant("request-iff-missing", _request_iff_missing),
    Invariant("received-within-max", _received_within_max),
    Invariant("ever-lost-superset", _ever_lost_superset),
    Invariant("no-scheduled-reply-for-missing", _no_scheduled_reply_for_missing),
    Invariant("backoff-within-cap", _backoff_within_cap),
    Invariant("cache-packets-were-lost", _cache_packets_were_lost),
    Invariant("cache-capacity", _cache_capacity),
    Invariant("expedited-iff-missing", _expedited_iff_missing),
    Invariant("failed-is-silent", _failed_is_silent),
)
