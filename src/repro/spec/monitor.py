"""Periodic runtime checking of the protocol invariants.

:class:`InvariantMonitor` schedules itself on the simulation clock and
evaluates every invariant against every agent at a fixed cadence, raising
:class:`InvariantViolation` at the exact simulated instant an invariant
breaks — so a failing fuzz case points directly at the offending state.
"""

from __future__ import annotations

from repro.obs.events import EventKind
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer
from repro.spec.invariants import ALL_INVARIANTS, Invariant
from repro.srm.agent import SrmAgent


class InvariantViolation(AssertionError):
    """An agent's state broke a protocol invariant."""

    def __init__(self, invariant: str, message: str, time: float) -> None:
        super().__init__(f"[t={time:.6f}] {invariant}: {message}")
        self.invariant = invariant
        self.message = message
        self.time = time


class InvariantMonitor:
    """Checks protocol invariants across agents while a simulation runs.

    Parameters
    ----------
    sim:
        The simulation engine to piggyback on.
    agents:
        The agents to watch (any mapping's values work).
    period:
        Check cadence in simulated seconds.  Smaller catches violations
        closer to their cause; larger is cheaper.
    invariants:
        The invariant set; defaults to :data:`ALL_INVARIANTS`.
    """

    def __init__(
        self,
        sim: Simulator,
        agents: dict[str, SrmAgent],
        period: float = 0.05,
        invariants: tuple[Invariant, ...] = ALL_INVARIANTS,
    ) -> None:
        self.sim = sim
        self.agents = agents
        self.invariants = invariants
        self.checks_run = 0
        self._timer = PeriodicTimer(sim, period, self.check_now)

    def start(self, first_delay: float = 0.0) -> None:
        self._timer.start(first_delay=max(first_delay, 1e-9))

    def stop(self) -> None:
        self._timer.stop()

    def check_now(self) -> None:
        """Evaluate every invariant on every agent right now."""
        now = self.sim.now
        for agent in self.agents.values():
            for invariant in self.invariants:
                message = invariant.check(agent, now)
                if message is not None:
                    if self.sim.tracer is not None:
                        self.sim.tracer.emit(
                            now,
                            EventKind.INVARIANT_VIOLATION,
                            node=agent.host_id,
                            invariant=invariant.name,
                            message=message,
                        )
                    raise InvariantViolation(invariant.name, message, now)
        self.checks_run += 1
