"""Executable protocol invariants (runtime verification).

CESRM's authors developed the protocol inside a formal-verification
effort — the paper's [10] (Livadas's thesis, *Formal Modeling, Analysis,
and Design of Network Protocols*) and [11] model SRM/CESRM as timed I/O
automata and prove their correctness.  This package carries that spirit
into the executable reproduction: :class:`~repro.spec.monitor.InvariantMonitor`
attaches to a running simulation and checks machine-checkable safety
invariants of the agent state machines *while they execute*, so every test
and fuzz run doubles as a (bounded) model-checking pass.
"""

from repro.spec.monitor import InvariantMonitor, InvariantViolation
from repro.spec.invariants import ALL_INVARIANTS, Invariant

__all__ = [
    "InvariantMonitor",
    "InvariantViolation",
    "ALL_INVARIANTS",
    "Invariant",
]
