"""The stable public facade of the reproduction.

Downstream code — the ``examples/``, notebooks, external experiments —
should import from here and nowhere else:

.. code-block:: python

    from repro.api import run_trace, SimulationConfig, FaultPlan

``repro.api`` re-exports, by explicit name, the full supported surface:

* running: :func:`run_trace`, :func:`build_simulation`,
  :class:`SimulationConfig`, :class:`RunResult`;
* the protocol registry: :class:`ProtocolSpec`, :func:`register`,
  :func:`available_protocols` (the list of runnable protocol names);
* deterministic fault injection: :class:`FaultPlan` and its event types,
  :func:`sample_plan`, :class:`FaultInjector`;
* the trace substrate: :func:`synthesize_trace`, :func:`trace_meta`,
  :class:`SynthesisParams`, the §4.2 estimators and :class:`Attributor`;
* declarative workloads: :func:`compile_workload`, :class:`WorkloadSpec`,
  :func:`register_workload`, and the generative topology registry
  (:class:`TopologySpec`, :func:`register_topology`,
  :func:`build_topology`, :func:`synthesize_topology_trace`) plus the
  membership-churn axis (:func:`compile_churn`, :class:`ChurnPlan`);
* verification and observability hooks, CESRM's cache/policy extension
  points, and the low-level building blocks the multi-source example
  wires by hand (engine, network, metrics);
* fleet sweeps: :func:`load_sweep`/:func:`compile_sweep` grids,
  :func:`run_sweep` resumable execution, :class:`SweepStore` columnar
  results.

Everything importable from the historical deep paths
(``repro.harness.runner`` etc.) still works, but only the names listed
in ``__all__`` here are covenanted API.
"""

from __future__ import annotations

# -- engine + network building blocks ----------------------------------
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.timers import PeriodicTimer, Timer
from repro.net.network import Network
from repro.net.packet import Cast, Packet, PacketKind
from repro.net.topology import MulticastTree, build_balanced_tree, build_random_tree

# -- trace substrate (§4.1–4.2) -----------------------------------------
from repro.traces.analysis import analyze_trace
from repro.traces.attribution import Attributor
from repro.traces.gilbert import GilbertModel
from repro.traces.inference import (
    estimate_link_rates_mle,
    estimate_link_rates_subtree,
)
from repro.traces.model import LossTrace, SyntheticTrace
from repro.traces.synthesize import SynthesisParams, synthesize_trace
from repro.traces.yajnik import FIGURE_TRACES, YAJNIK_TRACES, trace_meta

# -- protocols + extension points ---------------------------------------
from repro.core.agent import CesrmAgent
from repro.core.cachelab import (
    CacheError,
    CachePolicy,
    CachePolicySpec,
    CompiledCachePolicy,
    LfuCache,
    LruCache,
    ProbabilisticCache,
    RecoveryPairCache,
    RecoveryTuple,
    TtlCache,
    UnboundedCache,
    all_cache_policy_specs,
    cache_policy_names,
    compile_cache_policy,
    get_cache_policy_spec,
    make_cache_policy,
    register_cache_policy,
    unregister_cache_policy,
)
from repro.core.policies import (
    MostFrequentLossPolicy,
    MostRecentLossPolicy,
    SelectionPolicy,
    make_policy,
    register_policy,
)
from repro.core.router_assist import RouterAssistedCesrmAgent
from repro.lms.agent import LmsAgent
from repro.lms.fabric import LmsFabric
from repro.rmtp.agent import RmtpAgent
from repro.rmtp.fabric import RmtpFabric
from repro.srm.agent import SrmAgent
from repro.srm.constants import SrmParams

# -- harness: running simulations ---------------------------------------
from repro.harness.config import SimulationConfig
from repro.harness.registry import (
    ProtocolSpec,
    all_protocol_specs,
    all_specs,
    available_protocols,
    get_protocol_spec,
    get_spec,
    protocol_names,
    register,
    register_protocol,
    unregister,
    unregister_protocol,
)
from repro.harness.registries import Registry
from repro.harness.specstr import SpecError, canonical_spec, parse_spec
from repro.harness.runner import RunResult, Simulation, build_simulation, run_trace
from repro.harness.report import render_recovery_timeline

# -- deterministic fault injection --------------------------------------
from repro.faults import (
    EVENT_TYPES,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpecError,
    LinkDown,
    LinkFlap,
    NodeCrash,
    PacketDuplicate,
    PacketReorder,
    Partition,
    SessionSuppress,
    compile_fault_plan,
    is_fault_spec,
    parse_fault_event,
    sample_plan,
)

# -- workloads: declarative offered-traffic specs -----------------------
from repro.workloads import (
    SendEvent,
    Workload,
    WorkloadError,
    WorkloadSpec,
    all_workload_specs,
    available_workloads,
    build_topology,
    compile_workload,
    register_workload,
    synthesize_topology_trace,
    unregister_workload,
    workload_names,
)

# -- generative topology registry + membership churn --------------------
from repro.net.families import (
    TopologyError,
    TopologySpec,
    all_topology_specs,
    canonical_topology_spec,
    get_topology_spec,
    register_topology,
    topology_names,
)
from repro.churn import (
    ChurnError,
    ChurnPlan,
    compile_churn,
    validate_churn,
)

# -- verification, metrics, execution engine ----------------------------
from repro.spec import ALL_INVARIANTS, InvariantMonitor, InvariantViolation
from repro.metrics.collector import MetricsCollector
from repro.metrics.overhead import OverheadBreakdown, overhead_breakdown
from repro.metrics.stats import mean
from repro.exec import (
    ExecutionEngine,
    RunCache,
    RunJob,
    RunSummary,
    source_fingerprint,
)

# -- sweeps: declarative grids over the execution engine ----------------
from repro.sweep import (
    SweepCase,
    SweepError,
    SweepRunReport,
    SweepSpec,
    SweepStore,
    compile_sweep,
    load_sweep,
    run_sweep,
)

__all__ = [
    # engine + network
    "Simulator",
    "Timer",
    "PeriodicTimer",
    "RngRegistry",
    "Network",
    "Packet",
    "PacketKind",
    "Cast",
    "MulticastTree",
    "build_balanced_tree",
    "build_random_tree",
    # traces
    "LossTrace",
    "SyntheticTrace",
    "GilbertModel",
    "SynthesisParams",
    "synthesize_trace",
    "trace_meta",
    "YAJNIK_TRACES",
    "FIGURE_TRACES",
    "estimate_link_rates_subtree",
    "estimate_link_rates_mle",
    "Attributor",
    "analyze_trace",
    # protocols + extension points
    "SrmAgent",
    "SrmParams",
    "CesrmAgent",
    "RouterAssistedCesrmAgent",
    "LmsAgent",
    "LmsFabric",
    "RmtpAgent",
    "RmtpFabric",
    "RecoveryTuple",
    "RecoveryPairCache",
    "SelectionPolicy",
    "MostRecentLossPolicy",
    "MostFrequentLossPolicy",
    "make_policy",
    "register_policy",
    # cache laboratory
    "CacheError",
    "CachePolicy",
    "CachePolicySpec",
    "CompiledCachePolicy",
    "LruCache",
    "LfuCache",
    "TtlCache",
    "ProbabilisticCache",
    "UnboundedCache",
    "compile_cache_policy",
    "make_cache_policy",
    "register_cache_policy",
    "unregister_cache_policy",
    "get_cache_policy_spec",
    "cache_policy_names",
    "all_cache_policy_specs",
    # spec-string grammar + generic registry
    "SpecError",
    "parse_spec",
    "canonical_spec",
    "Registry",
    # harness
    "SimulationConfig",
    "RunResult",
    "Simulation",
    "run_trace",
    "build_simulation",
    "render_recovery_timeline",
    # registry
    "ProtocolSpec",
    "register",
    "unregister",
    "get_spec",
    "available_protocols",
    "all_specs",
    "register_protocol",
    "unregister_protocol",
    "get_protocol_spec",
    "protocol_names",
    "all_protocol_specs",
    # faults
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
    "LinkDown",
    "LinkFlap",
    "Partition",
    "NodeCrash",
    "PacketDuplicate",
    "PacketReorder",
    "SessionSuppress",
    "EVENT_TYPES",
    "sample_plan",
    "FaultSpecError",
    "is_fault_spec",
    "parse_fault_event",
    "compile_fault_plan",
    # workloads
    "Workload",
    "WorkloadSpec",
    "WorkloadError",
    "SendEvent",
    "compile_workload",
    "register_workload",
    "unregister_workload",
    "available_workloads",
    "workload_names",
    "all_workload_specs",
    "build_topology",
    "synthesize_topology_trace",
    # topology registry + churn
    "TopologySpec",
    "TopologyError",
    "register_topology",
    "topology_names",
    "all_topology_specs",
    "get_topology_spec",
    "canonical_topology_spec",
    "ChurnPlan",
    "ChurnError",
    "compile_churn",
    "validate_churn",
    # verification + metrics + execution
    "InvariantMonitor",
    "InvariantViolation",
    "ALL_INVARIANTS",
    "MetricsCollector",
    "OverheadBreakdown",
    "overhead_breakdown",
    "mean",
    "ExecutionEngine",
    "RunCache",
    "RunJob",
    "RunSummary",
    "source_fingerprint",
    # sweeps
    "SweepSpec",
    "SweepCase",
    "SweepError",
    "SweepStore",
    "SweepRunReport",
    "compile_sweep",
    "load_sweep",
    "run_sweep",
]
