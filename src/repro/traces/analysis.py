"""Trace loss-locality analysis.

The paper's design rests on measured properties of IP-multicast losses
(§1, §4.3, and the [10] trace analysis it cites):

* **temporal locality** — losses arrive in bursts, so
  ``P(loss | previous packet lost)`` far exceeds the marginal loss rate;
* **spatial locality** — losses concentrate on a few lossy links, so the
  link responsible for a receiver's next loss usually equals the link
  responsible for a *recent* loss;
* the **most-recent-loss policy outperforms most-frequent** on the real
  traces "because, more often than not, the location of a loss is
  correlated to a higher degree with the location of the most recent loss
  than with the locations of less recent losses" (§4.3).

This module quantifies all three on any trace: burst statistics,
conditional loss probabilities, per-link loss concentration, and — the
[10] result — the *predictive accuracy* of the selection policies: for
each loss, would the pair cached by the most-recent (resp. most-frequent)
policy have pointed at the same responsible link?
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

from repro.net.topology import LinkId
from repro.traces.model import SyntheticTrace


@dataclass(frozen=True)
class BurstStats:
    """Loss-run statistics for one receiver's sequence."""

    n_losses: int
    n_bursts: int
    mean_burst_length: float
    max_burst_length: int
    loss_rate: float
    #: P(loss at i | loss at i-1), the temporal-locality measure.
    conditional_loss_rate: float

    @property
    def locality_gain(self) -> float:
        """How much burstier than memoryless: conditional / marginal."""
        if self.loss_rate == 0.0:
            return 0.0
        return self.conditional_loss_rate / self.loss_rate


def burst_stats(seq: bytes) -> BurstStats:
    """Compute :class:`BurstStats` for a 0/1 loss sequence."""
    n = len(seq)
    losses = 0
    bursts = 0
    run = 0
    max_run = 0
    repeats = 0
    prev = 0
    for bit in seq:
        if bit:
            losses += 1
            run += 1
            if prev:
                repeats += 1
            else:
                bursts += 1
            max_run = max(max_run, run)
        else:
            run = 0
        prev = bit
    mean_burst = losses / bursts if bursts else 0.0
    conditional = repeats / losses if losses else 0.0
    return BurstStats(
        n_losses=losses,
        n_bursts=bursts,
        mean_burst_length=mean_burst,
        max_burst_length=max_run,
        loss_rate=losses / n if n else 0.0,
        conditional_loss_rate=conditional,
    )


@dataclass(frozen=True)
class LinkConcentration:
    """How concentrated the trace's losses are across tree links."""

    per_link_losses: dict[LinkId, int]

    @property
    def total(self) -> int:
        return sum(self.per_link_losses.values())

    def top_fraction(self, k: int = 3) -> float:
        """Fraction of loss events carried by the ``k`` lossiest links."""
        if not self.total:
            return 0.0
        ranked = sorted(self.per_link_losses.values(), reverse=True)
        return sum(ranked[:k]) / self.total


def link_concentration(synthetic: SyntheticTrace) -> LinkConcentration:
    """Count effective drop events per link (from ground-truth combos)."""
    counts: Counter[LinkId] = Counter()
    for combo in synthetic.link_combos.values():
        for link in combo:
            counts[link] += 1
    return LinkConcentration(per_link_losses=dict(counts))


@dataclass(frozen=True)
class PolicyPredictiveness:
    """The [10]-style policy comparison on one trace.

    For each receiver and each of its losses (after the first), a policy
    "predicts" the link responsible for the new loss from the history of
    the receiver's earlier losses:

    * most-recent predicts the previous loss's responsible link;
    * most-frequent predicts the modal responsible link of the last
      ``window`` losses.

    Accuracy is the fraction of losses whose responsible link matches the
    prediction — a pure trace property, independent of protocol dynamics,
    which is exactly how [10] justified the policy choice.
    """

    most_recent_accuracy: float
    most_frequent_accuracy: float
    samples: int

    @property
    def most_recent_wins(self) -> bool:
        return self.most_recent_accuracy >= self.most_frequent_accuracy


def policy_predictiveness(
    synthetic: SyntheticTrace, window: int = 16
) -> PolicyPredictiveness:
    """Measure both policies' loss-location prediction accuracy."""
    trace = synthetic.trace
    recent_hits = 0
    frequent_hits = 0
    samples = 0
    for receiver in trace.tree.receivers:
        seq = trace.loss_seqs[receiver]
        history: deque[LinkId] = deque(maxlen=window)
        for packet in range(trace.n_packets):
            if not seq[packet]:
                continue
            link = synthetic.responsible_link(receiver, packet)
            assert link is not None
            if history:
                samples += 1
                if history[-1] == link:
                    recent_hits += 1
                modal = Counter(history).most_common(1)[0][0]
                if modal == link:
                    frequent_hits += 1
            history.append(link)
    if not samples:
        return PolicyPredictiveness(0.0, 0.0, 0)
    return PolicyPredictiveness(
        most_recent_accuracy=recent_hits / samples,
        most_frequent_accuracy=frequent_hits / samples,
        samples=samples,
    )


@dataclass(frozen=True)
class TraceAnalysis:
    """Full locality report for one synthetic trace."""

    trace_name: str
    per_receiver: dict[str, BurstStats]
    concentration: LinkConcentration
    policies: PolicyPredictiveness

    @property
    def mean_locality_gain(self) -> float:
        gains = [s.locality_gain for s in self.per_receiver.values() if s.n_losses]
        if not gains:
            return 0.0
        return sum(gains) / len(gains)

    @property
    def mean_burst_length(self) -> float:
        values = [
            s.mean_burst_length for s in self.per_receiver.values() if s.n_bursts
        ]
        if not values:
            return 0.0
        return sum(values) / len(values)


def analyze_trace(synthetic: SyntheticTrace, window: int = 16) -> TraceAnalysis:
    """Produce the complete locality analysis of a trace."""
    trace = synthetic.trace
    return TraceAnalysis(
        trace_name=trace.name,
        per_receiver={
            receiver: burst_stats(trace.loss_seqs[receiver])
            for receiver in trace.tree.receivers
        },
        concentration=link_concentration(synthetic),
        policies=policy_predictiveness(synthetic, window=window),
    )
