"""The Gilbert two-state bursty loss process.

Packet losses on MBone links are bursty, not independent: the temporal-
dependence studies the paper cites (Yajnik et al. '96/'99, Bolot et al.,
Handley) all report loss runs far longer than a Bernoulli process would
produce.  CESRM's whole premise — that the *location* of the next loss
matches the location of recent losses — relies on this locality, so the
synthetic traces must reproduce it.

The classic Gilbert model is a two-state Markov chain (GOOD / BAD); packets
are dropped exactly while the chain sits in BAD.  With transition
probabilities ``p_gb`` (GOOD→BAD) and ``p_bg`` (BAD→GOOD):

* marginal loss rate      ``π_B = p_gb / (p_gb + p_bg)``
* mean loss-burst length  ``1 / p_bg``
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class GilbertModel:
    """A two-state Gilbert loss process.

    Attributes
    ----------
    p_gb:
        Probability of moving GOOD → BAD at each packet slot.
    p_bg:
        Probability of moving BAD → GOOD at each packet slot.
    """

    p_gb: float
    p_bg: float

    def __post_init__(self) -> None:
        for name, p in (("p_gb", self.p_gb), ("p_bg", self.p_bg)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p!r}")

    @classmethod
    def from_rate_and_burst(cls, loss_rate: float, mean_burst: float) -> "GilbertModel":
        """Build a model with the given marginal ``loss_rate`` and mean
        loss-burst length ``mean_burst`` (in packets, must be >= 1)."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate!r}")
        if mean_burst < 1.0:
            raise ValueError(f"mean_burst must be >= 1, got {mean_burst!r}")
        if loss_rate == 0.0:
            return cls(p_gb=0.0, p_bg=1.0)
        p_bg = 1.0 / mean_burst
        # pi_B = p_gb / (p_gb + p_bg)  =>  p_gb = pi_B * p_bg / (1 - pi_B)
        p_gb = loss_rate * p_bg / (1.0 - loss_rate)
        return cls(p_gb=min(p_gb, 1.0), p_bg=p_bg)

    @property
    def loss_rate(self) -> float:
        """Stationary marginal loss probability."""
        total = self.p_gb + self.p_bg
        if total == 0.0:
            return 0.0
        return self.p_gb / total

    @property
    def mean_burst_length(self) -> float:
        """Expected length of a loss run, in packets."""
        if self.p_bg == 0.0:
            return float("inf")
        return 1.0 / self.p_bg

    def sample_slots(self, n: int, rng: random.Random) -> bytes:
        """Reference slot-by-slot sampler; returns bytes with 1 = dropped.

        The chain starts in its stationary distribution so short samples are
        unbiased.  Emit-then-transition: the state at slot i decides the
        drop, then the chain steps for slot i+1.
        """
        out = bytearray(n)
        if n == 0 or self.p_gb == 0.0:
            return bytes(out)
        bad = rng.random() < self.loss_rate
        rand = rng.random
        p_gb, p_bg = self.p_gb, self.p_bg
        for i in range(n):
            if bad:
                out[i] = 1
                if rand() < p_bg:
                    bad = False
            elif rand() < p_gb:
                bad = True
        return bytes(out)

    def sample_mask(self, n: int, rng: random.Random) -> int:
        """Fast run-length sampler; returns an int bitmask (bit i = drop).

        Distributionally identical to :meth:`sample_slots`: run lengths of
        an emit-then-transition two-state chain are geometric with the
        respective exit probabilities, and by memorylessness the residual
        first run under a stationary start is geometric too.  Runtime is
        O(number of runs), which for low loss rates is far below O(n).
        """
        if n == 0 or self.p_gb == 0.0:
            return 0
        mask = 0
        pos = 0
        bad = rng.random() < self.loss_rate
        while pos < n:
            if bad:
                run = _geometric(self.p_bg, rng, limit=n - pos)
                mask |= ((1 << run) - 1) << pos
            else:
                run = _geometric(self.p_gb, rng, limit=n - pos)
            pos += run
            bad = not bad
        return mask

    def sample(self, n: int, rng: random.Random) -> bytes:
        """Sample ``n`` packet slots as bytes with 1 = dropped (fast path)."""
        return bytes_from_bitmask(self.sample_mask(n, rng), n)

    def scaled(self, factor: float) -> "GilbertModel":
        """A model with the marginal rate scaled by ``factor`` and the mean
        burst length preserved."""
        new_rate = min(self.loss_rate * factor, 0.95)
        return GilbertModel.from_rate_and_burst(new_rate, self.mean_burst_length)


def _geometric(p: float, rng: random.Random, limit: int) -> int:
    """A Geometric(p) draw on {1, 2, ...}, capped at ``limit``."""
    if p >= 1.0:
        return 1
    if p <= 0.0:
        return limit
    # Inverse transform: ceil(log(U) / log(1 - p)) has the geometric law.
    u = rng.random()
    if u <= 0.0:
        return limit
    draw = int(math.log(u) / math.log(1.0 - p)) + 1
    return min(draw, limit)


#: Per-byte expansion table: byte value -> 8 bytes of its bits (LSB first).
_BIT_TABLE = [bytes((b >> j) & 1 for j in range(8)) for b in range(256)]


def bytes_from_bitmask(mask: int, n: int) -> bytes:
    """Expand an int bitmask into ``n`` bytes of 0/1 (bit i -> byte i)."""
    if n == 0:
        return b""
    raw = mask.to_bytes((n + 7) // 8, "little")
    return b"".join(_BIT_TABLE[b] for b in raw)[:n]


def bitmask_from_bytes(seq: bytes) -> int:
    """Inverse of :func:`bytes_from_bitmask` for 0/1 byte sequences."""
    mask = 0
    for i, b in enumerate(seq):
        if b:
            mask |= 1 << i
    return mask


def iter_set_bits(mask: int):
    """Yield the positions of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
