"""Attributing observed loss patterns to tree-link combinations (§4.2).

Each per-packet loss pattern ``x`` (the set of receivers that lost the
packet) can be produced by many different combinations of link drops.  The
paper selects a representative combination per packet using the probability
of each combination ``c``:

    p(c) = Π_{l ∈ L_c} p(l) × Π_{l' ∈ U_c} (1 - p(l'))

where ``L_c`` are the dropped links, and ``U_c`` are the links neither in
``L_c`` nor downstream of it (drops hidden behind an upstream drop are
unobservable and carry no probability factor).  The posterior of ``c``
among all combinations producing ``x`` is ``p(c) / Σ_{c'} p(c')``.

Combinations are *antichains* of tree links whose downstream receiver sets
union to exactly ``x``.  Rather than enumerate them (exponentially many),
this module computes:

* the **total probability** of all combinations via sum-product dynamic
  programming over the tree,
* the **most probable combination** via max-product DP with traceback,
* an exact **posterior sample** via top-down sampling, and
* a brute-force enumerator for small trees (used by the tests to validate
  the DP).

The DP recurses on each node ``n`` with incoming link ``l``:

* subtree has no losses → weight ``CLEAN(n)``: every link in the subtree
  (including ``l``) forwards successfully;
* subtree entirely lost → either drop on ``l`` (weight ``p(l)``, links
  below unconstrained) or forward on ``l`` and cover every child subtree
  (weight ``(1-p(l)) × Π_children``); a lost leaf *must* drop on ``l``;
* subtree partially lost → ``l`` must forward; recurse into children.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.net.topology import LinkId, MulticastTree
from repro.traces.model import LossTrace

#: Ceiling on ``n_nodes * bitset_words`` for the ndarray DP: beyond it the
#: dense packed-bitset matrix would dominate memory (a 10^5-receiver tree
#: is ~1.25 GB), while the lazy recursive DP touches only the handful of
#: nodes a sparse loss pattern intersects.  Both paths are bit-identical.
_NDARRAY_DP_CEILING = 1 << 22


@dataclass(frozen=True)
class AttributionChoice:
    """The selected combination for one loss pattern."""

    combo: frozenset[LinkId]
    probability: float
    posterior: float


@dataclass
class AttributionResult:
    """Per-packet link attributions for a whole trace."""

    combos: dict[int, frozenset[LinkId]] = field(default_factory=dict)
    posteriors: dict[int, float] = field(default_factory=dict)
    distinct_patterns: int = 0

    def posterior_fraction_above(self, threshold: float) -> float:
        """Fraction of attributed packets whose selected combination has
        posterior probability above ``threshold`` (the §4.2 accuracy
        statistic)."""
        if not self.posteriors:
            return 0.0
        hits = sum(1 for p in self.posteriors.values() if p > threshold)
        return hits / len(self.posteriors)

    @property
    def mean_posterior(self) -> float:
        if not self.posteriors:
            return 0.0
        return sum(self.posteriors.values()) / len(self.posteriors)


class Attributor:
    """Attributes loss patterns over a fixed tree and link-rate estimate.

    Parameters
    ----------
    tree:
        The multicast tree.
    rates:
        Estimated per-link drop probabilities ``p(l)``.
    clamp:
        Rates are clamped into ``[lo, hi]`` so that patterns that occurred
        despite a zero-rate estimate still receive a well-defined
        attribution.
    """

    def __init__(
        self,
        tree: MulticastTree,
        rates: dict[LinkId, float],
        clamp: tuple[float, float] = (1e-6, 1.0 - 1e-6),
    ) -> None:
        self.tree = tree
        lo, hi = clamp
        self.rates = {
            link: min(max(rates.get(link, 0.0), lo), hi) for link in tree.links
        }
        # The DP runs on the tree's frozen integer index: per-node drop
        # rates, children tuples, and subtree-receiver bitsets replace the
        # (parent, child)-keyed dict lookups and frozenset algebra of the
        # per-name implementation.  Children order matches tree order, so
        # every float multiplication happens in the same order as before.
        index = tree.index
        self._index = index
        names = index.names
        parent = index.parent
        self._children = index.children
        self._subtree_bits = index.subtree_bits
        self._root = index.ids[tree.source]
        self._p = [
            self.rates[(names[parent[i]], name)] if parent[i] >= 0 else 0.0
            for i, name in enumerate(names)
        ]
        clean = [1.0] * index.n
        for node in index.post_order:
            weight = 1.0
            for child in self._children[node]:
                weight *= clean[child]
            if parent[node] >= 0:
                weight *= 1.0 - self._p[node]
            clean[node] = weight
        self._clean_by_id = clean
        #: node name -> clean-subtree weight (kept for the brute-force
        #: enumerator and for external inspection).
        self._clean = {name: clean[i] for i, name in enumerate(names)}
        self._cache: dict[frozenset[str], AttributionChoice] = {}
        self._init_ndarray_dp()

    def _init_ndarray_dp(self) -> None:
        """Preallocate the levelized ndarray DP (kernel v2).

        The forward pass runs bottom-up one *depth level* at a time on
        preallocated arrays: loss patterns classify against packed uint64
        subtree bitsets in one sweep, per-level weights are ``np.where``
        selections, and child products accumulate into the parent rows via
        ``np.multiply.at`` — which applies its operands sequentially in
        array order, so with each level sorted in Euler-tour (= sibling)
        order every float multiplication happens in exactly the recursive
        implementation's order.  Trees beyond :data:`_NDARRAY_DP_CEILING`
        keep the recursion (see the constant's rationale).
        """
        index = self._index
        n = index.n
        root = self._root
        bits_all = index.subtree_bits[root]
        words = max(1, (bits_all.bit_length() + 63) // 64)
        self._np_ready = n * words <= _NDARRAY_DP_CEILING
        if not self._np_ready:
            return
        self._np_words_n = words
        subtree_bits = self._subtree_bits
        packed = b"".join(
            subtree_bits[node].to_bytes(words * 8, "little")
            for node in range(n)
        )
        self._np_subtree = np.frombuffer(packed, dtype="<u8").reshape(n, words)
        self._np_p = np.array(self._p, dtype=np.float64)
        self._np_forward = 1.0 - self._np_p
        self._np_clean = np.array(self._clean_by_id, dtype=np.float64)
        self._np_parent = np.array(index.parent, dtype=np.int64)
        self._np_leaf = np.array(
            [not kids for kids in self._children], dtype=bool
        )
        # Depth levels, deepest first; BFS emits each level in parent-order
        # × child-order, i.e. Euler-tour order within the level.
        levels: list[np.ndarray] = []
        frontier = list(self._children[root])
        while frontier:
            levels.append(np.array(frontier, dtype=np.int64))
            frontier = [
                child for node in frontier for child in self._children[node]
            ]
        levels.reverse()
        self._np_levels = levels
        # Reusable per-query buffers.
        self._np_land = np.empty((n, words), dtype=np.uint64)
        self._np_eq = np.empty((n, words), dtype=bool)
        self._np_local = np.empty(n, dtype=bool)
        self._np_full = np.empty(n, dtype=bool)
        self._np_s = np.empty(n, dtype=np.float64)
        self._np_m = np.empty(n, dtype=np.float64)
        self._np_acc_s = np.empty(n, dtype=np.float64)
        self._np_acc_m = np.empty(n, dtype=np.float64)

    def _np_forward_pass(self, pattern: int) -> None:
        """Fill the per-query buffers for ``pattern`` (a receiver bitset):
        after this, ``_np_s``/``_np_m`` hold each node's sum/max-product
        weights and ``_np_acc_s``/``_np_acc_m`` each node's child products
        (so ``_np_acc_*[root]`` are the total/best over root children)."""
        words = self._np_words_n
        pat = np.frombuffer(
            pattern.to_bytes(words * 8, "little"), dtype="<u8"
        )
        subtree = self._np_subtree
        land = self._np_land
        np.bitwise_and(subtree, pat[None, :], out=land)
        np.any(land, axis=1, out=self._np_local)
        np.equal(land, subtree, out=self._np_eq)
        np.all(self._np_eq, axis=1, out=self._np_full)
        s = self._np_s
        m = self._np_m
        acc_s = self._np_acc_s
        acc_m = self._np_acc_m
        acc_s.fill(1.0)
        acc_m.fill(1.0)
        p = self._np_p
        forward = self._np_forward
        clean = self._np_clean
        parent = self._np_parent
        local = self._np_local
        full = self._np_full
        leaf = self._np_leaf
        for nodes in self._np_levels:
            pn = p[nodes]
            fw = forward[nodes]
            la = local[nodes]
            fu = full[nodes]
            lf = leaf[nodes]
            cl = clean[nodes]
            prod_s = fw * acc_s[nodes]
            prod_m = fw * acc_m[nodes]
            sv = np.where(
                la, np.where(fu, np.where(lf, pn, pn + prod_s), prod_s), cl
            )
            mv = np.where(
                la,
                np.where(fu, np.where(lf, pn, np.maximum(pn, prod_m)), prod_m),
                cl,
            )
            s[nodes] = sv
            m[nodes] = mv
            par = parent[nodes]
            np.multiply.at(acc_s, par, sv)
            np.multiply.at(acc_m, par, mv)

    # ------------------------------------------------------------------
    # Core DP (integer kernel)
    # ------------------------------------------------------------------
    def _weights(
        self, node: int, pattern: int, memo: dict[int, tuple[float, float]]
    ) -> tuple[float, float]:
        """Sum-product and max-product weights for the subtree at node id
        ``node`` (which must not be the root), given the loss-pattern
        bitset.  ``memo`` caches per-(query, node) results so traceback
        and sampling reuse the forward pass instead of recomputing it."""
        cached = memo.get(node)
        if cached is not None:
            return cached
        p = self._p[node]
        receivers = self._subtree_bits[node]
        local = receivers & pattern
        if not local:
            clean = self._clean_by_id[node]
            result = (clean, clean)
        elif local == receivers:
            children = self._children[node]
            if not children:  # lost leaf: the incoming link must drop
                result = (p, p)
            else:
                sum_prod = 1.0
                max_prod = 1.0
                for child in children:
                    s, m = self._weights(child, pattern, memo)
                    sum_prod *= s
                    max_prod *= m
                forward = 1.0 - p
                result = (p + forward * sum_prod, max(p, forward * max_prod))
        else:
            # Partial loss: the incoming link must forward.
            sum_prod = 1.0
            max_prod = 1.0
            for child in self._children[node]:
                s, m = self._weights(child, pattern, memo)
                sum_prod *= s
                max_prod *= m
            forward = 1.0 - p
            result = (forward * sum_prod, forward * max_prod)
        memo[node] = result
        return result

    def total_probability(self, pattern: frozenset[str]) -> float:
        """Σ p(c) over every combination producing ``pattern``."""
        self._check_pattern(pattern)
        bits = self._index.pattern_bits(pattern)
        if self._np_ready:
            self._np_forward_pass(bits)
            return float(self._np_acc_s[self._root])
        memo: dict[int, tuple[float, float]] = {}
        total = 1.0
        for child in self._children[self._root]:
            total *= self._weights(child, bits, memo)[0]
        return total

    def best_combination(self, pattern: frozenset[str]) -> AttributionChoice:
        """The maximum-probability combination and its posterior."""
        self._check_pattern(pattern)
        cached = self._cache.get(pattern)
        if cached is not None:
            return cached
        if not pattern:
            choice = AttributionChoice(frozenset(), self.total_probability(pattern), 1.0)
            self._cache[pattern] = choice
            return choice
        bits = self._index.pattern_bits(pattern)
        combo: set[LinkId] = set()
        root_children = self._children[self._root]
        if self._np_ready:
            self._np_forward_pass(bits)
            # ``_np_acc_*[root]`` accumulated the root children in sibling
            # order — the same association order as the explicit loop.
            total = float(self._np_acc_s[self._root])
            best = float(self._np_acc_m[self._root])
            for child in root_children:
                self._np_traceback(child, combo)
        else:
            memo: dict[int, tuple[float, float]] = {}
            total = 1.0
            best = 1.0
            for child in root_children:
                s, m = self._weights(child, bits, memo)
                total *= s
                best *= m
            for child in root_children:
                self._traceback(child, bits, memo, combo)
        posterior = best / total if total > 0.0 else 0.0
        choice = AttributionChoice(frozenset(combo), best, posterior)
        self._cache[pattern] = choice
        return choice

    def _np_traceback(self, node: int, combo: set[LinkId]) -> None:
        """Array-backed mirror of :meth:`_traceback`: reads the per-node
        classification and child max-products left by the forward pass."""
        if not self._np_local[node]:
            return
        children = self._children[node]
        if self._np_full[node]:
            names = self._index.names
            if not children:
                combo.add((names[self._index.parent[node]], names[node]))
                return
            p = self._p[node]
            if p >= (1.0 - p) * float(self._np_acc_m[node]):
                combo.add((names[self._index.parent[node]], names[node]))
                return
        for child in children:
            self._np_traceback(child, combo)

    def _traceback(
        self,
        node: int,
        pattern: int,
        memo: dict[int, tuple[float, float]],
        combo: set[LinkId],
    ) -> None:
        receivers = self._subtree_bits[node]
        local = receivers & pattern
        if not local:
            return
        names = self._index.names
        children = self._children[node]
        if local == receivers:
            p = self._p[node]
            if not children:
                combo.add((names[self._index.parent[node]], names[node]))
                return
            max_prod = 1.0
            for child in children:
                max_prod *= self._weights(child, pattern, memo)[1]
            if p >= (1.0 - p) * max_prod:
                combo.add((names[self._index.parent[node]], names[node]))
                return
        for child in children:
            self._traceback(child, pattern, memo, combo)

    def sample_combination(
        self, pattern: frozenset[str], rng: random.Random
    ) -> frozenset[LinkId]:
        """Draw a combination exactly from the posterior over combinations."""
        self._check_pattern(pattern)
        bits = self._index.pattern_bits(pattern)
        combo: set[LinkId] = set()
        if self._np_ready:
            self._np_forward_pass(bits)
            for child in self._children[self._root]:
                self._np_sample_into(child, rng, combo)
            return frozenset(combo)
        memo: dict[int, tuple[float, float]] = {}
        for child in self._children[self._root]:
            self._sample_into(child, bits, rng, memo, combo)
        return frozenset(combo)

    def _np_sample_into(
        self, node: int, rng: random.Random, combo: set[LinkId]
    ) -> None:
        """Array-backed mirror of :meth:`_sample_into` (identical draw
        sequence: one ``rng.random()`` per fully-lost internal node, in
        the same traversal order)."""
        if not self._np_local[node]:
            return
        children = self._children[node]
        if self._np_full[node]:
            names = self._index.names
            if not children:
                combo.add((names[self._index.parent[node]], names[node]))
                return
            p = self._p[node]
            if rng.random() < p / float(self._np_s[node]):
                combo.add((names[self._index.parent[node]], names[node]))
                return
        for child in children:
            self._np_sample_into(child, rng, combo)

    def _sample_into(
        self,
        node: int,
        pattern: int,
        rng: random.Random,
        memo: dict[int, tuple[float, float]],
        combo: set[LinkId],
    ) -> None:
        receivers = self._subtree_bits[node]
        local = receivers & pattern
        if not local:
            return
        names = self._index.names
        children = self._children[node]
        if local == receivers:
            p = self._p[node]
            if not children:
                combo.add((names[self._index.parent[node]], names[node]))
                return
            total, _ = self._weights(node, pattern, memo)
            if rng.random() < p / total:
                combo.add((names[self._index.parent[node]], names[node]))
                return
        for child in children:
            self._sample_into(child, pattern, rng, memo, combo)

    # ------------------------------------------------------------------
    # Brute force (tests / tiny trees)
    # ------------------------------------------------------------------
    def enumerate_combinations(
        self, pattern: frozenset[str]
    ) -> list[tuple[frozenset[LinkId], float]]:
        """All (combination, probability) pairs for ``pattern``.

        Exponential; intended for validating the DP on small trees.
        """
        self._check_pattern(pattern)

        def expand(node: str) -> list[tuple[frozenset[LinkId], float]]:
            parent = self.tree.parent(node)
            assert parent is not None
            link = (parent, node)
            p = self.rates[link]
            receivers = self.tree.subtree_receivers(node)
            local = receivers & pattern
            if not local:
                return [(frozenset(), self._clean[node])]
            children = self.tree.children(node)
            options: list[tuple[frozenset[LinkId], float]] = []
            if local == receivers:
                options.append((frozenset([link]), p))
                if not children:
                    return options
            prefix = 1.0 - p
            partials: list[tuple[frozenset[LinkId], float]] = [(frozenset(), prefix)]
            for child in children:
                partials = [
                    (acc | c, w * cw)
                    for acc, w in partials
                    for c, cw in expand(child)
                ]
            options.extend(partials)
            return options

        results: list[tuple[frozenset[LinkId], float]] = [(frozenset(), 1.0)]
        for child in self.tree.children(self.tree.source):
            results = [
                (acc | c, w * cw)
                for acc, w in results
                for c, cw in expand(child)
            ]
        return results

    def pattern_of_combo(self, combo: frozenset[LinkId]) -> frozenset[str]:
        """The loss pattern a combination produces: the union of receiver
        sets downstream of its links."""
        out: set[str] = set()
        for _, child in combo:
            out |= self.tree.subtree_receivers(child)
        return frozenset(out)

    # ------------------------------------------------------------------
    # Whole-trace attribution
    # ------------------------------------------------------------------
    def attribute_trace(
        self,
        trace: LossTrace,
        select: str = "max",
        rng: random.Random | None = None,
    ) -> AttributionResult:
        """Attribute every lossy packet of ``trace``.

        ``select`` is ``"max"`` (most probable combination, the default the
        simulations use) or ``"sample"`` (posterior draw per packet,
        requires ``rng``).
        """
        if select not in ("max", "sample"):
            raise ValueError(f"unknown select mode {select!r}")
        if select == "sample" and rng is None:
            raise ValueError("select='sample' requires an rng")
        result = AttributionResult()
        seen: set[frozenset[str]] = set()
        for packet in trace.lossy_packets():
            pattern = trace.loss_pattern(packet)
            seen.add(pattern)
            choice = self.best_combination(pattern)
            if select == "max":
                result.combos[packet] = choice.combo
            else:
                assert rng is not None
                result.combos[packet] = self.sample_combination(pattern, rng)
            result.posteriors[packet] = choice.posterior
        result.distinct_patterns = len(seen)
        return result

    def _check_pattern(self, pattern: frozenset[str]) -> None:
        unknown = pattern - set(self.tree.receivers)
        if unknown:
            raise ValueError(f"pattern contains non-receivers: {sorted(unknown)}")
