"""Metadata of the 14 Yajnik et al. IP multicast traces (Table 1).

The real MBone traces (single-source constant-rate transmissions to 8–15
research hosts across the US and Europe, 1995–1996) are not redistributable;
we carry their published metadata verbatim and synthesize traces that match
it: receiver count, tree depth, packet period, packet count, and — via
calibration of the per-link loss processes — the total loss count.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceMeta:
    """One row of Table 1."""

    index: int
    name: str
    n_receivers: int
    tree_depth: int
    period_ms: int
    duration: str
    n_packets: int
    n_losses: int

    @property
    def period(self) -> float:
        """Packet period in seconds."""
        return self.period_ms / 1000.0

    @property
    def mean_loss_rate(self) -> float:
        """Average per-receiver loss probability implied by the row."""
        return self.n_losses / (self.n_packets * self.n_receivers)


#: Table 1 of the paper, verbatim.
YAJNIK_TRACES: tuple[TraceMeta, ...] = (
    TraceMeta(1, "RFV960419", 12, 6, 80, "1:00:00", 45001, 24086),
    TraceMeta(2, "RFV960508", 10, 5, 40, "1:39:19", 148970, 55987),
    TraceMeta(3, "UCB960424", 15, 7, 40, "1:02:29", 93734, 33506),
    TraceMeta(4, "WRN950919", 8, 4, 80, "0:23:31", 17637, 10276),
    TraceMeta(5, "WRN951030", 10, 4, 80, "1:16:02", 57030, 15879),
    TraceMeta(6, "WRN951101", 9, 5, 80, "0:55:40", 41751, 18911),
    TraceMeta(7, "WRN951113", 12, 5, 80, "1:01:55", 46443, 29686),
    TraceMeta(8, "WRN951114", 10, 4, 80, "0:51:23", 38539, 11803),
    TraceMeta(9, "WRN951128", 9, 4, 80, "0:59:56", 44956, 33040),
    TraceMeta(10, "WRN951204", 11, 5, 80, "1:00:32", 45404, 16814),
    TraceMeta(11, "WRN951211", 11, 4, 80, "1:36:42", 72519, 44649),
    TraceMeta(12, "WRN951214", 7, 4, 80, "0:51:38", 38724, 20872),
    TraceMeta(13, "WRN951216", 8, 3, 80, "1:06:56", 50202, 37833),
    TraceMeta(14, "WRN951218", 8, 3, 80, "1:33:20", 69994, 43578),
)

#: The six "typical traces" whose per-receiver results Figures 1–4 plot.
FIGURE_TRACES: tuple[str, ...] = (
    "RFV960419",
    "RFV960508",
    "UCB960424",
    "WRN951113",
    "WRN951128",
    "WRN951211",
)

_BY_NAME = {meta.name: meta for meta in YAJNIK_TRACES}


def trace_meta(name: str) -> TraceMeta:
    """Look up a Table 1 row by trace name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown trace {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
