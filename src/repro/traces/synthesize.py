"""Calibrated synthetic trace generation.

For each Table 1 row we build a random multicast tree with the row's
receiver count and depth, attach an independent Gilbert loss process to
every downstream link, and calibrate the processes' marginal rates so the
expected total receiver-loss count matches the row's published figure.

Loss *locality*, the property CESRM exploits, emerges in two ways:

* **temporal** — Gilbert bursts produce runs of consecutive drops on a link;
* **spatial** — a drop on an interior link is shared by the whole subtree,
  and link propensities are drawn from a heavy-tailed distribution so a few
  "hot" links dominate, as the MBone measurements consistently found.

Calibration details: the expected total loss count under per-link marginal
rates ``p_l`` is ``sum_r (1 - prod_{l in path(r)} (1 - p_l)) * n_packets``;
a global scale factor on the raw propensities is found by bisection, the
trace is sampled, and — because bursty processes have high variance — the
scale is re-adjusted and resampled until the realized count is within
tolerance of the target (deterministic: each attempt uses a fresh derived
stream).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.topology import LinkId, MulticastTree, build_random_tree
from repro.sim.rng import RngRegistry
from repro.traces.gilbert import GilbertModel, bytes_from_bitmask, iter_set_bits
from repro.traces.model import LossTrace, SyntheticTrace, TraceError
from repro.traces.yajnik import TraceMeta


@dataclass(frozen=True)
class SynthesisParams:
    """Free-form synthesis request (when not reproducing a Table 1 row)."""

    name: str
    n_receivers: int
    tree_depth: int
    period: float
    n_packets: int
    target_losses: int
    min_burst: float = 3.0
    max_burst: float = 10.0
    hot_link_fraction: float = 0.2
    tolerance: float = 0.02
    max_attempts: int = 10

    @classmethod
    def from_meta(cls, meta: TraceMeta, max_packets: int | None = None) -> "SynthesisParams":
        """Derive parameters from a Table 1 row, optionally truncating the
        packet count (the loss target scales proportionally)."""
        n_packets = meta.n_packets
        target = meta.n_losses
        if max_packets is not None and max_packets < n_packets:
            target = max(1, round(target * max_packets / n_packets))
            n_packets = max_packets
        return cls(
            name=meta.name,
            n_receivers=meta.n_receivers,
            tree_depth=meta.tree_depth,
            period=meta.period,
            n_packets=n_packets,
            target_losses=target,
        )


def raw_link_propensities(
    tree: MulticastTree,
    rng: random.Random,
    hot_link_fraction: float = 0.2,
) -> dict[LinkId, float]:
    """Unnormalized per-link loss propensities.

    Drawn log-normally so a small subset of links is far lossier than the
    rest; a ``hot_link_fraction`` of links gets a further multiplier, and
    propensity grows with link depth — the MBone measurements consistently
    located most loss on tail circuits near specific receivers, with the
    backbone links near the source comparatively clean.  Only the *ratios*
    matter — calibration scales them all.
    """
    depth = max(tree.depth, 1)
    all_receivers = tree.subtree_receivers(tree.source)
    out: dict[LinkId, float] = {}
    for link in tree.links:
        base = rng.lognormvariate(0.0, 1.4)
        if rng.random() < hot_link_fraction:
            base *= rng.uniform(3.0, 8.0)
        child_depth = tree.node_depth(link[1])
        base *= (child_depth / depth) ** 2.0
        if tree.subtree_receivers(link[1]) == all_receivers:
            # Links whose drop blanks the whole group are the backbone at
            # the source's uplink — consistently clean in the MBone
            # measurements (whole-group loss events were rare).
            base *= 0.15
        out[link] = base
    return out


def expected_total_losses(
    tree: MulticastTree, rates: dict[LinkId, float], n_packets: int
) -> float:
    """E[total receiver losses] for independent per-link marginals."""
    total = 0.0
    for receiver in tree.receivers:
        path = tree.path(tree.source, receiver)
        survive = 1.0
        for link in zip(path, path[1:]):
            survive *= 1.0 - rates[link]
        total += 1.0 - survive
    return total * n_packets


def calibrate_link_rates(
    tree: MulticastTree,
    propensities: dict[LinkId, float],
    target_losses: int,
    n_packets: int,
    rate_cap: float = 0.60,
) -> dict[LinkId, float]:
    """Scale raw propensities so the expected loss total hits the target.

    Rates are capped at ``rate_cap`` per link; bisection on the global
    scale factor converges because the expectation is monotone in it.
    """
    if target_losses <= 0:
        return {link: 0.0 for link in propensities}
    max_total = expected_total_losses(
        tree, {link: rate_cap for link in propensities}, n_packets
    )
    if target_losses > max_total:
        raise TraceError(
            f"target of {target_losses} losses unreachable (max {max_total:.0f})"
        )

    def rates_at(scale: float) -> dict[LinkId, float]:
        return {link: min(p * scale, rate_cap) for link, p in propensities.items()}

    lo, hi = 0.0, 1.0
    while expected_total_losses(tree, rates_at(hi), n_packets) < target_losses:
        hi *= 2.0
        if hi > 1e9:  # pragma: no cover - guarded by the max_total check
            raise TraceError("calibration diverged")
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if expected_total_losses(tree, rates_at(mid), n_packets) < target_losses:
            lo = mid
        else:
            hi = mid
    return rates_at((lo + hi) / 2.0)


def synthesize_trace(
    spec: TraceMeta | SynthesisParams,
    seed: int = 0,
    max_packets: int | None = None,
) -> SyntheticTrace:
    """Generate a synthetic trace for a Table 1 row or custom parameters.

    Deterministic in ``(spec, seed, max_packets)``.  The realized total loss
    count lands within ``tolerance`` of the target (resampling with an
    adjusted scale when bursty variance overshoots).
    """
    params = (
        SynthesisParams.from_meta(spec, max_packets)
        if isinstance(spec, TraceMeta)
        else (spec if max_packets is None else _truncate_params(spec, max_packets))
    )
    registry = RngRegistry(seed).fork(f"trace:{params.name}")
    tree = build_random_tree(
        params.n_receivers, params.tree_depth, registry.stream("topology")
    )
    return _synthesize_with_registry(params, tree, registry)


def synthesize_on_tree(
    tree: MulticastTree,
    params: SynthesisParams,
    seed: int = 0,
) -> SyntheticTrace:
    """Synthesize a trace over a *given* tree (generative topologies).

    Same loss machinery and stream discipline as :func:`synthesize_trace`
    — only the topology step is skipped, so ``params.n_receivers`` /
    ``params.tree_depth`` are taken from the tree, not drawn.
    Deterministic in ``(tree, params, seed)``.
    """
    registry = RngRegistry(seed).fork(f"trace:{params.name}")
    return _synthesize_with_registry(params, tree, registry)


def _synthesize_with_registry(
    params: SynthesisParams,
    tree: MulticastTree,
    registry: RngRegistry,
) -> SyntheticTrace:
    """The calibrate/sample/re-adjust loop shared by both entry points.

    Stream names and draw order are part of the determinism contract:
    ``propensities`` then ``sample:{attempt}``, exactly as the original
    single-function implementation consumed them.
    """
    propensities = raw_link_propensities(
        tree, registry.stream("propensities"), params.hot_link_fraction
    )

    target = params.target_losses
    best: SyntheticTrace | None = None
    best_err = float("inf")
    adjusted_target = float(target)
    for attempt in range(params.max_attempts):
        rates = calibrate_link_rates(
            tree, propensities, max(1, round(adjusted_target)), params.n_packets
        )
        candidate = _sample_trace(
            params, tree, rates, registry.stream(f"sample:{attempt}")
        )
        realized = candidate.trace.total_losses
        err = abs(realized - target) / max(target, 1)
        if err < best_err:
            best, best_err = candidate, err
        if err <= params.tolerance:
            break
        # Burst variance pushed us off target: steer the expectation, but
        # gently — each attempt's count is noisy, and chasing the noise
        # with a full correction makes the loop oscillate.
        correction = target / max(realized, 1)
        adjusted_target *= min(max(correction, 0.75), 1.33)
    assert best is not None
    return best


def _truncate_params(params: SynthesisParams, max_packets: int) -> SynthesisParams:
    if max_packets >= params.n_packets:
        return params
    scaled = max(1, round(params.target_losses * max_packets / params.n_packets))
    return SynthesisParams(
        name=params.name,
        n_receivers=params.n_receivers,
        tree_depth=params.tree_depth,
        period=params.period,
        n_packets=max_packets,
        target_losses=scaled,
        min_burst=params.min_burst,
        max_burst=params.max_burst,
        hot_link_fraction=params.hot_link_fraction,
        tolerance=params.tolerance,
        max_attempts=params.max_attempts,
    )


def _sample_trace(
    params: SynthesisParams,
    tree: MulticastTree,
    rates: dict[LinkId, float],
    rng: random.Random,
) -> SyntheticTrace:
    n = params.n_packets
    link_masks: dict[LinkId, int] = {}
    for link in tree.links:
        rate = rates[link]
        if rate <= 0.0:
            link_masks[link] = 0
            continue
        burst = rng.uniform(params.min_burst, params.max_burst)
        model = GilbertModel.from_rate_and_burst(rate, burst)
        link_masks[link] = model.sample_mask(n, rng)

    # Observed per-receiver sequences: OR of the raw drops along the path.
    loss_seqs: dict[str, bytes] = {}
    for receiver in tree.receivers:
        path = tree.path(tree.source, receiver)
        mask = 0
        for link in zip(path, path[1:]):
            mask |= link_masks[link]
        loss_seqs[receiver] = bytes_from_bitmask(mask, n)

    # Ground truth: a link's drop is *effective* (observable) only when no
    # ancestor link dropped the same packet — the surviving topmost drops
    # form an antichain that reproduces the observed pattern exactly.
    combos: dict[int, frozenset[LinkId]] = {}
    combo_sets: dict[int, set[LinkId]] = {}
    ancestor_mask_cache: dict[str, int] = {tree.source: 0}
    for link in _links_topdown(tree):
        parent, child = link
        upstream = ancestor_mask_cache[parent]
        effective = link_masks[link] & ~upstream
        ancestor_mask_cache[child] = upstream | link_masks[link]
        for packet in iter_set_bits(effective):
            combo_sets.setdefault(packet, set()).add(link)
    for packet, links in combo_sets.items():
        combos[packet] = frozenset(links)

    trace = LossTrace(params.name, tree, params.period, loss_seqs)
    return SyntheticTrace(trace=trace, link_rates=dict(rates), link_combos=combos)


def _links_topdown(tree: MulticastTree) -> list[LinkId]:
    """Tree links ordered parents-before-children."""
    out: list[LinkId] = []
    stack = [tree.source]
    while stack:
        node = stack.pop()
        for child in tree.children(node):
            out.append((node, child))
            stack.append(child)
    return out
