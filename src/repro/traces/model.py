"""Trace data structures.

§4.1 represents a trace as per-receiver binary loss sequences
``loss : R -> (I -> {0,1})`` over a static multicast tree, and §4.2 derives
the *link trace representation* ``link : R -> (I -> L ∪ {⊥})`` mapping each
suffered loss to the tree link estimated to be responsible.  Here a trace
holds the observed sequences; the link representation is a per-packet set of
dropped links (an antichain of the tree), from which the per-receiver
responsible link is the unique set member on that receiver's path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.topology import LinkId, MulticastTree


class TraceError(ValueError):
    """Raised for malformed or inconsistent trace data."""


class LossTrace:
    """Per-receiver binary loss sequences over a multicast tree.

    Parameters
    ----------
    name:
        Trace identifier (e.g. ``"WRN951113"``).
    tree:
        The multicast tree of the transmission.
    period:
        Packet transmission period in seconds.
    loss_seqs:
        Mapping receiver id -> ``bytes`` of length ``n_packets`` with 1
        marking a lost packet.  Every tree receiver must be present.
    """

    def __init__(
        self,
        name: str,
        tree: MulticastTree,
        period: float,
        loss_seqs: dict[str, bytes],
    ) -> None:
        if period <= 0:
            raise TraceError(f"period must be positive, got {period!r}")
        missing = set(tree.receivers) - set(loss_seqs)
        if missing:
            raise TraceError(f"loss sequences missing for receivers {sorted(missing)}")
        extra = set(loss_seqs) - set(tree.receivers)
        if extra:
            raise TraceError(f"loss sequences for unknown receivers {sorted(extra)}")
        lengths = {len(seq) for seq in loss_seqs.values()}
        if len(lengths) != 1:
            raise TraceError(f"inconsistent sequence lengths: {sorted(lengths)}")
        for receiver, seq in loss_seqs.items():
            bad = set(seq) - {0, 1}
            if bad:
                raise TraceError(f"receiver {receiver!r} has non-binary entries {bad}")

        self.name = name
        self.tree = tree
        self.period = period
        self.loss_seqs = dict(loss_seqs)
        self.n_packets = lengths.pop()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def lost(self, receiver: str, packet: int) -> bool:
        """True if ``receiver`` lost ``packet``."""
        return bool(self.loss_seqs[receiver][packet])

    def loss_pattern(self, packet: int) -> frozenset[str]:
        """The set of receivers that lost ``packet`` (§4.2's pattern x)."""
        return frozenset(
            r for r, seq in self.loss_seqs.items() if seq[packet]
        )

    def lossy_packets(self) -> list[int]:
        """Packets lost by at least one receiver, ascending."""
        out = []
        seqs = list(self.loss_seqs.values())
        for i in range(self.n_packets):
            if any(seq[i] for seq in seqs):
                out.append(i)
        return out

    def receiver_losses(self, receiver: str) -> int:
        """Number of packets lost by ``receiver``."""
        return sum(self.loss_seqs[receiver])

    @property
    def total_losses(self) -> int:
        """Total losses summed over receivers (Table 1's '# of Losses')."""
        return sum(sum(seq) for seq in self.loss_seqs.values())

    def loss_rate(self, receiver: str) -> float:
        """Fraction of packets lost by ``receiver``."""
        if not self.n_packets:
            return 0.0
        return self.receiver_losses(receiver) / self.n_packets

    @property
    def mean_loss_rate(self) -> float:
        """Average per-receiver loss rate."""
        receivers = self.tree.receivers
        if not receivers or not self.n_packets:
            return 0.0
        return self.total_losses / (self.n_packets * len(receivers))

    @property
    def duration(self) -> float:
        """Transmission duration in seconds."""
        return self.n_packets * self.period

    def truncated(self, max_packets: int) -> "LossTrace":
        """A copy limited to the first ``max_packets`` packets."""
        if max_packets >= self.n_packets:
            return self
        seqs = {r: seq[:max_packets] for r, seq in self.loss_seqs.items()}
        return LossTrace(self.name, self.tree, self.period, seqs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LossTrace({self.name!r}, receivers={len(self.tree.receivers)}, "
            f"packets={self.n_packets}, losses={self.total_losses})"
        )


@dataclass
class SyntheticTrace:
    """A synthesized trace together with its generation ground truth.

    Attributes
    ----------
    trace:
        The observable part (what a measurement study would record).
    link_rates:
        True marginal loss rate of each downstream link.
    link_combos:
        Ground-truth per-packet dropped-link antichains: for each packet
        lost by someone, the set of links that dropped it *and* would have
        received it (drops hidden behind upstream drops are excluded, since
        they are unobservable and carry no behavioural consequence).
    """

    trace: LossTrace
    link_rates: dict[LinkId, float]
    link_combos: dict[int, frozenset[LinkId]] = field(default_factory=dict)

    def responsible_link(self, receiver: str, packet: int) -> LinkId | None:
        """The paper's ``link(r)(i)``: the combo link on ``r``'s path, or
        None when ``r`` received the packet."""
        if not self.trace.lost(receiver, packet):
            return None
        combo = self.link_combos.get(packet, frozenset())
        path = self.trace.tree.path(self.trace.tree.source, receiver)
        path_links = set(zip(path, path[1:]))
        on_path = [link for link in combo if link in path_links]
        if len(on_path) != 1:
            raise TraceError(
                f"packet {packet}: expected exactly one responsible link for "
                f"{receiver!r}, found {on_path!r}"
            )
        return on_path[0]

    def truncated(self, max_packets: int) -> "SyntheticTrace":
        """Limit to the first ``max_packets`` packets (combos filtered)."""
        if max_packets >= self.trace.n_packets:
            return self
        return SyntheticTrace(
            trace=self.trace.truncated(max_packets),
            link_rates=dict(self.link_rates),
            link_combos={i: c for i, c in self.link_combos.items() if i < max_packets},
        )
