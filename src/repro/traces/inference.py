"""Per-link loss-rate estimation from end-to-end observations.

§4.2 estimates the probability ``p(l)`` that a packet is dropped on each
tree link, as a prerequisite for attributing observed loss patterns to link
combinations.  The paper uses two estimators and reports they agree closely:

* the **subtree method** of Yajnik et al. — a packet is *known to reach*
  node ``n`` if some receiver in ``n``'s subtree received it; the loss rate
  of link ``n -> n'`` is estimated as the fraction of packets known to
  reach ``n`` but not ``n'``;
* the **maximum-likelihood estimator** of Cáceres et al. (the MINC
  estimator) — for each node ``k``, the reach probability ``A_k`` solves
  ``1 - γ_k/A_k = Π_{j ∈ children(k)} (1 - γ_j/A_k)`` where ``γ_k`` is the
  observed probability that the packet is seen somewhere below ``k``; link
  loss rates follow as ``1 - A_child / A_parent``.

Both estimators are unidentifiable across single-child router chains (no
observation separates the two links), so by convention the whole chain's
loss is attributed to its *lowest* link; the links above get rate 0.  Tests
verify both estimators recover generator ground truth on synthetic traces.
"""

from __future__ import annotations

from repro.net.topology import LinkId, MulticastTree
from repro.traces.gilbert import bitmask_from_bytes
from repro.traces.model import LossTrace


def reach_masks(trace: LossTrace) -> dict[str, int]:
    """For each node, the bitmask of packets *known to reach* it: packets
    received by at least one receiver in its subtree.

    The source trivially reaches every packet (it sent them).
    """
    tree = trace.tree
    received: dict[str, int] = {}
    full = (1 << trace.n_packets) - 1
    for receiver, seq in trace.loss_seqs.items():
        received[receiver] = full & ~bitmask_from_bytes(seq)

    masks: dict[str, int] = {}

    def fill(node: str) -> int:
        kids = tree.children(node)
        if not kids:
            mask = received.get(node, 0)
        else:
            mask = 0
            for child in kids:
                mask |= fill(child)
        masks[node] = mask
        return mask

    fill(tree.source)
    masks[tree.source] = full
    return masks


def estimate_link_rates_subtree(trace: LossTrace) -> dict[LinkId, float]:
    """The Yajnik et al. estimator (see module docstring).

    Single-child chains are collapsed: the upper links of a chain get rate
    0 and the lowest link carries the chain's whole loss.
    """
    tree = trace.tree
    masks = reach_masks(trace)
    rates: dict[LinkId, float] = {}
    for parent, child in tree.links:
        parent_node = _chain_top(tree, parent)
        reach_parent = masks[parent_node]
        denom = reach_parent.bit_count()
        if _is_single_child_chain_upper(tree, parent, child):
            rates[(parent, child)] = 0.0
            continue
        if denom == 0:
            rates[(parent, child)] = 0.0
            continue
        lost_here = reach_parent & ~masks[child]
        rates[(parent, child)] = lost_here.bit_count() / denom
    return rates


def estimate_link_rates_mle(
    trace: LossTrace,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> dict[LinkId, float]:
    """The Cáceres et al. (MINC) maximum-likelihood estimator.

    ``γ_k`` is the empirical probability that a packet is observed anywhere
    in ``k``'s subtree; the reach probability ``A_k`` of each multi-child
    node solves the MINC fixed-point equation (solved here by bisection —
    the residual is monotone in ``A``).  Chain convention as in
    :func:`estimate_link_rates_subtree`.
    """
    tree = trace.tree
    if trace.n_packets == 0:
        return {link: 0.0 for link in tree.links}
    masks = reach_masks(trace)
    gamma = {node: masks[node].bit_count() / trace.n_packets for node in tree.nodes}
    gamma[tree.source] = 1.0

    reach_prob: dict[str, float] = {tree.source: 1.0}

    def solve(node: str) -> None:
        kids = tree.children(node)
        for child in kids:
            solve(child)
        if node == tree.source:
            return
        if not kids:
            # Leaf receiver: everything below it is itself, so A = γ.
            reach_prob[node] = gamma[node]
        elif len(kids) == 1:
            # Unidentifiable chain: push the node's reach up to γ of the
            # child subtree later; mark with the child's solution.
            reach_prob[node] = None  # type: ignore[assignment]
        else:
            reach_prob[node] = _solve_minc(
                gamma[node], [gamma[c] for c in kids], tol, max_iter
            )

    solve(tree.source)

    # Resolve chains: a single-child node inherits its parent's reach
    # probability, so the upper chain links get rate 0 and the lowest link
    # absorbs the chain's loss.
    def resolve(node: str, parent_reach: float) -> None:
        a = reach_prob.get(node, 1.0)
        if a is None:
            a = parent_reach
            reach_prob[node] = a
        for child in tree.children(node):
            resolve(child, a)

    resolve(tree.source, 1.0)

    rates: dict[LinkId, float] = {}
    for parent, child in tree.links:
        a_parent = reach_prob[parent]
        a_child = reach_prob[child]
        if a_parent <= 0.0:
            rates[(parent, child)] = 0.0
        else:
            rates[(parent, child)] = min(max(1.0 - a_child / a_parent, 0.0), 1.0)
    return rates


def _solve_minc(
    gamma_k: float, child_gammas: list[float], tol: float, max_iter: int
) -> float:
    """Solve ``1 - γ_k/A = Π_j (1 - γ_j/A)`` for ``A`` by bisection.

    The solution lies in ``(max_j γ_j, 1]``; when the subtree shows no
    shared loss the estimate collapses to ``A = γ_k`` (lossless links
    below a perfectly-reached node) — handled by the bracket choice.
    """
    if gamma_k <= 0.0:
        return 0.0

    def residual(a: float) -> float:
        prod = 1.0
        for g in child_gammas:
            prod *= 1.0 - g / a
        return (1.0 - gamma_k / a) - prod

    lo = max(max(child_gammas), gamma_k)
    if lo <= 0.0:
        return 0.0
    lo = min(lo, 1.0)
    hi = 1.0
    # residual(lo+) <= 0 (some factor hits 0 while the LHS is >= 0 ...),
    # residual(hi) >= 0 in the identifiable case; fall back to γ_k when the
    # bracket degenerates (no correlation evidence).
    r_lo = residual(lo + 1e-15)
    r_hi = residual(hi)
    if r_lo == 0.0:
        return lo
    if r_lo > 0.0 or r_hi < 0.0:
        return max(gamma_k, lo)
    for _ in range(max_iter):
        mid = (lo + hi) / 2.0
        r = residual(mid)
        if abs(r) < tol:
            return mid
        if r < 0.0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def _is_single_child_chain_upper(tree: MulticastTree, parent: str, child: str) -> bool:
    """True when ``parent -> child`` is an upper link of a single-child
    chain, i.e. ``child`` is a single-child router (the chain continues)."""
    kids = tree.children(child)
    return len(kids) == 1


def _chain_top(tree: MulticastTree, node: str) -> str:
    """Walk up from ``node`` while it is a single-child router (its reach
    set is indistinguishable from its child's), returning the first node
    whose reach is actually observable — the top of the chain.  This makes
    the subtree estimator condition on the same reach set as the MLE and
    attributes each chain's loss to its lowest link."""
    current = node
    while len(tree.children(current)) == 1:
        parent = tree.parent(current)
        if parent is None:
            return current
        current = parent
    return current
