"""Trace serialization.

A compact JSON format for traces so users can persist synthesized traces or
import real measurement data (e.g. converted Yajnik et al. sequences).  Loss
sequences are stored run-length encoded — MBone loss sequences compress
extremely well because losses are bursty.

Format (JSON object):

.. code-block:: json

    {
      "format": "cesrm-trace-v1",
      "name": "WRN951113",
      "period": 0.08,
      "n_packets": 46443,
      "source": "s",
      "parents": {"x1": "s", "r1": "x1"},
      "receivers": ["r1"],
      "loss_rle": {"r1": [120, 3, 77, 1]}
    }

``loss_rle`` alternates run lengths of received / lost packets, starting
with received (a leading 0 means the sequence starts with a loss).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.net.topology import MulticastTree
from repro.traces.model import LossTrace, TraceError

FORMAT_TAG = "cesrm-trace-v1"


def rle_encode(seq: bytes) -> list[int]:
    """Run-length encode a 0/1 byte sequence, starting with a 0-run."""
    runs: list[int] = []
    current = 0
    count = 0
    for value in seq:
        if value == current:
            count += 1
        else:
            runs.append(count)
            current = value
            count = 1
    runs.append(count)
    return runs


def rle_decode(runs: list[int], n: int) -> bytes:
    """Inverse of :func:`rle_encode`."""
    out = bytearray()
    value = 0
    for run in runs:
        if run < 0:
            raise TraceError(f"negative run length {run}")
        out.extend(bytes([value]) * run)
        value ^= 1
    if len(out) != n:
        raise TraceError(f"RLE decodes to {len(out)} packets, expected {n}")
    return bytes(out)


def trace_to_dict(trace: LossTrace) -> dict:
    """The JSON-ready representation of a trace."""
    return {
        "format": FORMAT_TAG,
        "name": trace.name,
        "period": trace.period,
        "n_packets": trace.n_packets,
        "source": trace.tree.source,
        "parents": trace.tree.to_parent_map(),
        "receivers": list(trace.tree.receivers),
        "loss_rle": {r: rle_encode(seq) for r, seq in trace.loss_seqs.items()},
    }


def trace_from_dict(data: dict) -> LossTrace:
    """Parse the representation produced by :func:`trace_to_dict`."""
    if data.get("format") != FORMAT_TAG:
        raise TraceError(f"unsupported trace format {data.get('format')!r}")
    tree = MulticastTree(data["source"], data["parents"], data["receivers"])
    n = int(data["n_packets"])
    loss_seqs = {
        receiver: rle_decode(runs, n) for receiver, runs in data["loss_rle"].items()
    }
    return LossTrace(data["name"], tree, float(data["period"]), loss_seqs)


def save_trace(trace: LossTrace, path: str | Path) -> None:
    """Write a trace as JSON to ``path``."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: str | Path) -> LossTrace:
    """Read a trace saved by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))


def dump_trace(trace: LossTrace, fp: IO[str]) -> None:
    """Write a trace as JSON to an open text file."""
    json.dump(trace_to_dict(trace), fp)


def parse_trace(fp: IO[str]) -> LossTrace:
    """Read a trace from an open text file."""
    return trace_from_dict(json.load(fp))
