"""Trace substrate: loss traces, synthesis, and link-loss inference.

The paper's evaluation replays the 14 IP-multicast transmission traces of
Yajnik et al. (GLOBECOM '96): per-receiver binary loss sequences over a
static multicast tree.  The real traces are not redistributable, so this
package synthesizes statistically equivalent ones (per-link Gilbert bursty
loss processes calibrated to the Table 1 loss counts) and implements the
paper's full §4.2 methodology for locating losses:

* :mod:`repro.traces.model` — trace data structures.
* :mod:`repro.traces.gilbert` — the two-state bursty loss process.
* :mod:`repro.traces.yajnik` — Table 1 metadata for the 14 traces.
* :mod:`repro.traces.synthesize` — calibrated synthetic trace generation.
* :mod:`repro.traces.inference` — per-link loss-rate estimation (the
  Yajnik et al. subtree method and the Cáceres et al. MLE).
* :mod:`repro.traces.attribution` — loss-pattern → link-combination
  attribution by exact dynamic programming over the tree.
* :mod:`repro.traces.analysis` — loss-locality statistics and the
  [10]-style policy-predictiveness comparison.
* :mod:`repro.traces.io` — trace serialization.
"""

from repro.traces.model import LossTrace, SyntheticTrace, TraceError
from repro.traces.gilbert import GilbertModel
from repro.traces.yajnik import TraceMeta, YAJNIK_TRACES, FIGURE_TRACES, trace_meta
from repro.traces.synthesize import synthesize_trace, calibrate_link_rates
from repro.traces.inference import (
    estimate_link_rates_subtree,
    estimate_link_rates_mle,
)
from repro.traces.attribution import Attributor, AttributionResult
from repro.traces.analysis import (
    TraceAnalysis,
    BurstStats,
    analyze_trace,
    burst_stats,
    link_concentration,
    policy_predictiveness,
)

__all__ = [
    "LossTrace",
    "SyntheticTrace",
    "TraceError",
    "GilbertModel",
    "TraceMeta",
    "YAJNIK_TRACES",
    "FIGURE_TRACES",
    "trace_meta",
    "synthesize_trace",
    "calibrate_link_rates",
    "estimate_link_rates_subtree",
    "estimate_link_rates_mle",
    "Attributor",
    "AttributionResult",
    "TraceAnalysis",
    "BurstStats",
    "analyze_trace",
    "burst_stats",
    "link_concentration",
    "policy_predictiveness",
]
