"""CESRM — Caching-Enhanced Scalable Reliable Multicast.

A from-scratch reproduction of *"Caching-Enhanced Scalable Reliable
Multicast"* (Livadas & Keidar, DSN 2004): the CESRM protocol, the SRM
baseline it extends, a deterministic discrete-event network simulator, a
trace substrate reproducing the Yajnik et al. MBone loss traces, the §4.2
link-loss inference pipeline, and a harness regenerating every table and
figure of the paper's evaluation.

Quickstart
----------
>>> from repro import synthesize_trace, trace_meta, run_trace, SimulationConfig
>>> st = synthesize_trace(trace_meta("WRN951113"), seed=0, max_packets=2000)
>>> cfg = SimulationConfig(max_packets=2000)
>>> srm = run_trace(st, "srm", cfg)
>>> cesrm = run_trace(st, "cesrm", cfg)

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
table/figure reproductions.
"""

from repro.sim import Simulator, Timer, PeriodicTimer, RngRegistry
from repro.net import (
    MulticastTree,
    Network,
    Packet,
    PacketKind,
    Cast,
    build_balanced_tree,
    build_random_tree,
)
from repro.traces import (
    LossTrace,
    SyntheticTrace,
    GilbertModel,
    YAJNIK_TRACES,
    FIGURE_TRACES,
    trace_meta,
    synthesize_trace,
    estimate_link_rates_subtree,
    estimate_link_rates_mle,
    Attributor,
    analyze_trace,
)
from repro.srm import SrmAgent, SrmParams
from repro.core import (
    CesrmAgent,
    RouterAssistedCesrmAgent,
    RecoveryTuple,
    RecoveryPairCache,
    MostRecentLossPolicy,
    MostFrequentLossPolicy,
    SelectionPolicy,
    make_policy,
    register_policy,
)
from repro.lms import LmsAgent, LmsFabric
from repro.rmtp import RmtpAgent, RmtpFabric
from repro.spec import InvariantMonitor, InvariantViolation, ALL_INVARIANTS
from repro.harness import (
    SimulationConfig,
    RunResult,
    run_trace,
    build_simulation,
    ProtocolSpec,
    available_protocols,
)
from repro.faults import FaultPlan, FaultInjector, sample_plan
from repro.metrics import MetricsCollector, OverheadBreakdown
from repro.exec import (
    ExecutionEngine,
    RunCache,
    RunJob,
    RunSummary,
    source_fingerprint,
)

__version__ = "1.0.0"

__all__ = [
    # simulation engine
    "Simulator",
    "Timer",
    "PeriodicTimer",
    "RngRegistry",
    # network
    "MulticastTree",
    "Network",
    "Packet",
    "PacketKind",
    "Cast",
    "build_balanced_tree",
    "build_random_tree",
    # traces
    "LossTrace",
    "SyntheticTrace",
    "GilbertModel",
    "YAJNIK_TRACES",
    "FIGURE_TRACES",
    "trace_meta",
    "synthesize_trace",
    "estimate_link_rates_subtree",
    "estimate_link_rates_mle",
    "Attributor",
    "analyze_trace",
    # protocols
    "SrmAgent",
    "SrmParams",
    "CesrmAgent",
    "RouterAssistedCesrmAgent",
    "RecoveryTuple",
    "RecoveryPairCache",
    "MostRecentLossPolicy",
    "MostFrequentLossPolicy",
    "SelectionPolicy",
    "make_policy",
    "register_policy",
    "LmsAgent",
    "LmsFabric",
    "RmtpAgent",
    "RmtpFabric",
    "InvariantMonitor",
    "InvariantViolation",
    "ALL_INVARIANTS",
    # harness
    "SimulationConfig",
    "RunResult",
    "run_trace",
    "build_simulation",
    "ProtocolSpec",
    "available_protocols",
    # faults
    "FaultPlan",
    "FaultInjector",
    "sample_plan",
    # execution engine
    "ExecutionEngine",
    "RunCache",
    "RunJob",
    "RunSummary",
    "source_fingerprint",
    # metrics
    "MetricsCollector",
    "OverheadBreakdown",
    "__version__",
]


def __getattr__(name):
    # Deprecated shim: repro.PROTOCOLS forwards to the config shim, which
    # warns and resolves the live registry.
    if name == "PROTOCOLS":
        from repro.harness import config

        return config.PROTOCOLS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
