"""Observability: structured event tracing, timelines, and profiling.

The subsystem has four parts:

* :mod:`repro.obs.events` — the typed, timestamped :class:`TraceEvent`
  model and the :class:`EventKind` vocabulary;
* :mod:`repro.obs.sink` / :mod:`repro.obs.tracer` — the zero-overhead-
  when-disabled event bus: a :class:`Tracer` fans events out to
  :class:`RingBufferSink` / :class:`JsonlFileSink` / :class:`FilterSink`
  sinks and keeps run-level counters and histograms;
* :mod:`repro.obs.timeline` — :class:`RecoveryTimeline`, which folds an
  event stream into one causal :class:`LossStory` per lost packet
  (expedited vs SRM-fallback, every duplicate request/repair, final
  recovery time);
* :mod:`repro.obs.profile` — :class:`SimProfiler`, per-handler event
  counts and wall-clock for the simulation engine.

Attach tracing to a run with ``run_trace(..., tracer=Tracer(sink))`` or
from the command line with ``cesrm trace`` / ``--trace-out``.
"""

from repro.obs.events import EventKind, TraceEvent, callback_label, callback_node
from repro.obs.profile import SimProfiler
from repro.obs.sink import FilterSink, JsonlFileSink, RingBufferSink, TraceSink
from repro.obs.timeline import LossStory, RecoveryTimeline
from repro.obs.tracer import Tracer

__all__ = [
    "EventKind",
    "TraceEvent",
    "callback_label",
    "callback_node",
    "SimProfiler",
    "TraceSink",
    "RingBufferSink",
    "JsonlFileSink",
    "FilterSink",
    "LossStory",
    "RecoveryTimeline",
    "Tracer",
]
