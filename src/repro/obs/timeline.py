"""Fold an event stream back into one causal story per lost packet.

The paper's headline numbers (recovery time, Fig. 1/2; overhead, Fig. 5)
are aggregates over thousands of individual loss recoveries.  When one of
those aggregates looks wrong, the question is always about a *specific*
loss: who detected it, did the cached expeditious pair act, did the
expedited path succeed or did SRM's suppression machinery recover it, and
how many duplicate requests/repairs did the group pay along the way.

:class:`RecoveryTimeline` answers that from a trace: it groups events by
data-packet identity ``(source, seqno)`` and per detecting host, and
builds one :class:`LossStory` per detected loss.  A story's own-host
events (detection, expedited attempts, request rounds, the completing
repair) interleave with group-context events for the same packet
(requests/replies from other hosts — the ones that suppressed or repaired
this host), ordered by simulated time, so reading a story top to bottom
is reading the recovery's causality.

Outcome labels:

* ``expedited`` — the completing repair was an expedited reply (§3.2);
* ``srm`` — SRM's fall-back scheme completed the recovery;
* ``late-data`` — the "lost" packet arrived on the data path (reordering);
* ``unrecovered`` — the run ended with the loss still open.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.obs.events import EventKind, TraceEvent, iter_events

#: Own-host event kinds that belong to a loss story.
_OWN_KINDS = frozenset(
    {
        EventKind.LOSS_DETECTED,
        EventKind.REQUEST_SENT,
        EventKind.REQUEST_BACKOFF,
        EventKind.CACHE_HIT,
        EventKind.CACHE_MISS,
        EventKind.CACHE_EVICT,
        EventKind.ERQST_SCHEDULED,
        EventKind.ERQST_SENT,
        EventKind.ERQST_CANCELLED,
        EventKind.RECOVERY_COMPLETED,
        EventKind.RECOVERY_LATE_DATA,
    }
)

#: Group-wide kinds that give a loss its context (who repaired whom).
_CONTEXT_KINDS = frozenset(
    {
        EventKind.REQUEST_SENT,
        EventKind.REPLY_SCHEDULED,
        EventKind.REPLY_SENT,
        EventKind.REPLY_SUPPRESSED,
        EventKind.ERQST_SENT,
        EventKind.ERQST_SHARED_LOSS,
        EventKind.ERQST_SUPPRESSED,
        EventKind.EREPL_SENT,
        EventKind.NET_DROP,
        EventKind.FAULT_DUPLICATE,
        EventKind.FAULT_REORDER,
    }
)


@dataclass
class LossStory:
    """The causal record of one detected loss at one host."""

    host: str
    source: str
    seqno: int
    detected_at: float
    #: Time-ordered events: this host's own steps plus group context.
    steps: list[TraceEvent] = field(default_factory=list)
    recovered_at: float | None = None
    outcome: str = "unrecovered"

    @property
    def recovery_time(self) -> float | None:
        """Detection-to-repair latency (the Fig. 1 quantity), if recovered."""
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.detected_at

    @property
    def expedited(self) -> bool:
        return self.outcome == "expedited"

    def own_steps(self) -> list[TraceEvent]:
        """Only this host's events (no group context)."""
        return [e for e in self.steps if e.node == self.host]

    def count(self, kind: str, own_only: bool = False) -> int:
        return sum(
            1
            for e in (self.own_steps() if own_only else self.steps)
            if e.kind == kind
        )

    @property
    def requests_sent(self) -> int:
        """SRM request rounds this host itself fired."""
        return self.count(EventKind.REQUEST_SENT, own_only=True)

    @property
    def duplicate_repairs(self) -> int:
        """Repairs the group sent for this packet beyond the first."""
        repairs = self.count(EventKind.REPLY_SENT) + self.count(
            EventKind.EREPL_SENT
        )
        return max(0, repairs - 1)

    def describe(self) -> str:
        """The pretty-printed timeline (``cesrm trace`` output unit)."""
        took = (
            f"{self.recovery_time * 1000:.1f} ms"
            if self.recovery_time is not None
            else "never"
        )
        lines = [
            f"loss {self.source}:{self.seqno} at {self.host} — "
            f"{self.outcome} (detected t={self.detected_at:.4f}, "
            f"recovered {took})"
        ]
        for event in self.steps:
            marker = "*" if event.node == self.host else " "
            lines.append(f"  {marker} {event.describe()}")
        return "\n".join(lines)


class RecoveryTimeline:
    """Per-loss causal stories reconstructed from a trace-event stream.

    ``faults`` holds the run-level fault markers of a fault-injected run
    (crashes, restarts, outages, partitions, session muting), time-ordered,
    so a recovery anomaly can be read against the fault that caused it.
    """

    def __init__(
        self, stories: list[LossStory], faults: list[TraceEvent] | None = None
    ) -> None:
        self.stories = stories
        self.faults = faults or []

    @classmethod
    def from_events(
        cls, events: Iterable[TraceEvent | Mapping]
    ) -> "RecoveryTimeline":
        """Fold ``events`` (events or JSONL dicts) into loss stories."""
        # Bucket every packet-scoped event by data-packet identity; keep
        # run-level fault markers (crash/outage/mute — no packet) aside.
        by_packet: dict[tuple[str, int], list[TraceEvent]] = defaultdict(list)
        faults: list[TraceEvent] = []
        for event in iter_events(iter(events)):
            packet = event.packet_id
            if event.kind.startswith("fault.") and packet is None:
                faults.append(event)
            if packet is not None and (
                event.kind in _OWN_KINDS or event.kind in _CONTEXT_KINDS
            ):
                by_packet[packet].append(event)

        stories: list[LossStory] = []
        for (source, seqno), bucket in sorted(by_packet.items()):
            bucket.sort(key=lambda e: e.time)
            detectors = [
                e for e in bucket if e.kind == EventKind.LOSS_DETECTED
            ]
            for detection in detectors:
                host = detection.node
                assert host is not None
                story = LossStory(
                    host=host,
                    source=source,
                    seqno=seqno,
                    detected_at=detection.time,
                )
                for event in bucket:
                    own = event.node == host and event.kind in _OWN_KINDS
                    context = (
                        event.node != host and event.kind in _CONTEXT_KINDS
                    )
                    if not (own or context):
                        continue
                    story.steps.append(event)
                    if own and event.kind == EventKind.RECOVERY_COMPLETED:
                        story.recovered_at = event.time
                        story.outcome = (
                            "expedited"
                            if event.detail.get("expedited")
                            else "srm"
                        )
                    elif own and event.kind == EventKind.RECOVERY_LATE_DATA:
                        story.recovered_at = event.time
                        story.outcome = "late-data"
                stories.append(story)
        stories.sort(key=lambda s: (s.detected_at, s.host))
        faults.sort(key=lambda e: e.time)
        return cls(stories, faults=faults)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def for_host(self, host: str) -> list[LossStory]:
        return [s for s in self.stories if s.host == host]

    def for_packet(self, source: str, seqno: int) -> list[LossStory]:
        return [
            s for s in self.stories if s.source == source and s.seqno == seqno
        ]

    def with_outcome(self, outcome: str) -> list[LossStory]:
        return [s for s in self.stories if s.outcome == outcome]

    def faults_during(self, start: float, end: float) -> list[TraceEvent]:
        """Fault markers inside ``[start, end]`` — the ones plausibly
        implicated in a recovery spanning that window."""
        return [e for e in self.faults if start <= e.time <= end]

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for story in self.stories:
            counts[story.outcome] = counts.get(story.outcome, 0) + 1
        return dict(sorted(counts.items()))

    def describe(self, limit: int | None = None) -> str:
        """Render every (or the first ``limit``) stories plus a footer."""
        shown = self.stories if limit is None else self.stories[:limit]
        parts = [story.describe() for story in shown]
        hidden = len(self.stories) - len(shown)
        footer = ", ".join(
            f"{outcome}={count}"
            for outcome, count in self.outcome_counts().items()
        )
        if hidden > 0:
            parts.append(f"... {hidden} more stories not shown")
        if self.faults:
            fault_lines = [f"{len(self.faults)} fault marker(s):"]
            fault_lines.extend(f"  {e.describe()}" for e in self.faults)
            parts.append("\n".join(fault_lines))
        parts.append(f"{len(self.stories)} loss stories ({footer or 'none'})")
        return "\n\n".join(parts)

    def __len__(self) -> int:
        return len(self.stories)
