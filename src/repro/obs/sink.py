"""Trace sinks: where emitted events go.

A sink is anything with ``emit(event)`` / ``close()`` (the
:class:`TraceSink` protocol).  Two implementations cover the common
cases: :class:`RingBufferSink` keeps the last N events in memory for
in-process reconstruction (timelines, tests), and :class:`JsonlFileSink`
streams events to disk as JSON lines for offline analysis and the
``cesrm trace --trace-out`` artifact.  :class:`FilterSink` wraps another
sink and keeps only selected kind prefixes and/or nodes.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Iterable, Iterator, Protocol

from repro.obs.events import TraceEvent


class TraceSink(Protocol):
    """What the tracer requires of an attached sink."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class RingBufferSink:
    """Keeps the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        self._buffer.append(event)
        self.emitted += 1

    def close(self) -> None:
        """Nothing to release; the buffer stays readable after close."""

    @property
    def dropped(self) -> int:
        """Events that fell off the front of the ring."""
        return self.emitted - len(self._buffer)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._buffer)


class JsonlFileSink:
    """Appends every event to a file as one JSON object per line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file: IO[str] | None = self.path.open("w")
        self.emitted = 0

    def emit(self, event: TraceEvent) -> None:
        assert self._file is not None, "sink is closed"
        self._file.write(json.dumps(event.to_dict()) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    @staticmethod
    def read(path: str | Path) -> list[TraceEvent]:
        """Load a JSONL trace file back into events."""
        out = []
        with Path(path).open() as handle:
            for line in handle:
                line = line.strip()
                if line:
                    out.append(TraceEvent.from_dict(json.loads(line)))
        return out


class FilterSink:
    """Forwards only events matching the given kind prefixes / nodes."""

    def __init__(
        self,
        sink: TraceSink,
        kinds: Iterable[str] | None = None,
        nodes: Iterable[str] | None = None,
    ) -> None:
        self.sink = sink
        self.kinds = tuple(kinds) if kinds else None
        self.nodes = frozenset(nodes) if nodes else None

    def emit(self, event: TraceEvent) -> None:
        if self.kinds is not None and not event.kind.startswith(self.kinds):
            return
        if self.nodes is not None and event.node not in self.nodes:
            return
        self.sink.emit(event)

    def close(self) -> None:
        self.sink.close()
