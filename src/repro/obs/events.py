"""Typed, timestamped trace events.

Every instrumented layer emits :class:`TraceEvent` records through the
run's :class:`~repro.obs.tracer.Tracer`.  An event is identified by a
dotted ``kind`` string (stable, grep-able, namespaced by layer), carries
the simulated ``time`` it happened at, the ``node`` it happened on, and —
for everything pertaining to a data packet — the ``(source, seqno)``
identity of that packet, which is what lets
:class:`~repro.obs.timeline.RecoveryTimeline` fold the stream back into
one causal story per loss.  Free-form context goes in ``detail``.

The full kind vocabulary lives in :class:`EventKind`; sinks and the CLI
filter on prefixes (``net.``, ``timer.``, ``cache.`` ...).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping


class EventKind:
    """The dotted event-kind vocabulary, grouped by emitting layer."""

    # -- simulation engine: protocol timers ----------------------------
    TIMER_SCHEDULE = "timer.schedule"
    TIMER_FIRE = "timer.fire"
    TIMER_CANCEL = "timer.cancel"

    # -- network layer -------------------------------------------------
    NET_SEND = "net.send"        # a host injects a packet (cast recorded)
    NET_HOP = "net.hop"          # one directed link crossing
    NET_QUEUE = "net.queue"      # nonzero FIFO queueing delay on a link
    NET_DROP = "net.drop"        # loss injection removed the packet
    NET_DELIVER = "net.deliver"  # delivered to the agent at a host

    # -- SRM recovery --------------------------------------------------
    LOSS_DETECTED = "loss.detected"
    REQUEST_SENT = "request.sent"            # multicast RQST fired
    REQUEST_BACKOFF = "request.backoff"      # suppressed by a foreign request
    REPLY_SCHEDULED = "reply.scheduled"
    REPLY_SENT = "reply.sent"
    REPLY_SUPPRESSED = "reply.suppressed"    # scheduled reply killed by another's
    REPLY_DUPLICATE = "reply.duplicate"      # repair for an already-held packet
    RECOVERY_COMPLETED = "recovery.completed"
    RECOVERY_UNDETECTED = "recovery.undetected"
    RECOVERY_LATE_DATA = "recovery.late-data"

    # -- CESRM expedited recovery (§3) ---------------------------------
    CACHE_HIT = "cache.hit"      # selection policy proposed a pair
    CACHE_MISS = "cache.miss"    # no usable tuple for the loss's source
    CACHE_UPDATE = "cache.update"
    CACHE_INSERT = "cache.insert"  # new tuple admitted (non-default policies)
    CACHE_EVICT = "cache.evict"  # pairs forgotten after a failed expedited try
    #                              or displaced for capacity (reason="capacity")
    ERQST_SCHEDULED = "erqst.scheduled"
    ERQST_SENT = "erqst.sent"
    ERQST_CANCELLED = "erqst.cancelled"
    ERQST_SHARED_LOSS = "erqst.shared-loss"  # replier missed the packet too
    ERQST_SUPPRESSED = "erqst.suppressed"    # replier's SRM reply already pending
    EREPL_SENT = "erepl.sent"

    # -- workload generation (repro.workloads) -------------------------
    WORKLOAD_SEND = "workload.send"  # a workload event fired (obj in detail)

    # -- sweep orchestration (repro.sweep); time = wall seconds --------
    SWEEP_START = "sweep.start"
    SWEEP_JOB = "sweep.job"              # one job ingested (cached/fresh)
    SWEEP_JOB_FAILED = "sweep.job-failed"  # retries exhausted
    SWEEP_DONE = "sweep.done"

    # -- fault injection (repro.faults) --------------------------------
    FAULT_LINK_DOWN = "fault.link-down"
    FAULT_LINK_UP = "fault.link-up"
    FAULT_PARTITION = "fault.partition"      # subtree uplink cut
    FAULT_HEAL = "fault.heal"
    FAULT_CRASH = "fault.crash"
    FAULT_RESTART = "fault.restart"
    FAULT_SESSION_MUTE = "fault.session-mute"
    FAULT_SESSION_UNMUTE = "fault.session-unmute"
    FAULT_DUPLICATE = "fault.duplicate"      # hop rule copied the packet
    FAULT_REORDER = "fault.reorder"          # hop rule added arrival delay

    # -- membership churn (repro.churn) --------------------------------
    CHURN_JOIN = "churn.join"                # new receiver attached
    CHURN_LEAVE = "churn.leave"              # live receiver departed

    # -- runtime verification ------------------------------------------
    INVARIANT_VIOLATION = "invariant.violation"


class TraceEvent:
    """One timestamped observation from an instrumented layer."""

    __slots__ = ("time", "kind", "node", "source", "seqno", "detail")

    def __init__(
        self,
        time: float,
        kind: str,
        node: str | None = None,
        source: str | None = None,
        seqno: int | None = None,
        detail: Mapping[str, Any] | None = None,
    ) -> None:
        self.time = time
        self.kind = kind
        self.node = node
        self.source = source
        self.seqno = seqno
        self.detail = dict(detail) if detail else {}

    @property
    def packet_id(self) -> tuple[str, int] | None:
        """Identity of the data packet the event pertains to, if any."""
        if self.source is None or self.seqno is None or self.seqno < 0:
            return None
        return (self.source, self.seqno)

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON data (the JSONL wire format; None fields omitted)."""
        out: dict[str, Any] = {"t": self.time, "kind": self.kind}
        if self.node is not None:
            out["node"] = self.node
        if self.source is not None:
            out["source"] = self.source
        if self.seqno is not None:
            out["seqno"] = self.seqno
        if self.detail:
            out["detail"] = self.detail
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        return cls(
            time=data["t"],
            kind=data["kind"],
            node=data.get("node"),
            source=data.get("source"),
            seqno=data.get("seqno"),
            detail=data.get("detail"),
        )

    def describe(self) -> str:
        """One human-readable line (the ``cesrm trace --events`` format)."""
        where = f" [{self.node}]" if self.node else ""
        packet = ""
        if self.seqno is not None and self.seqno >= 0:
            packet = f" {self.source}:{self.seqno}"
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return (
            f"t={self.time:9.4f}{where} {self.kind}{packet}"
            + (f" ({extras})" if extras else "")
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceEvent({self.describe()})"


def callback_label(callback: Callable[..., Any]) -> str:
    """A stable display name for an event/timer callback.

    Bound methods name their class (``SrmAgent._request_timer_fired``);
    everything else falls back to ``__qualname__``.
    """
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        return f"{type(owner).__name__}.{callback.__name__}"
    return getattr(callback, "__qualname__", repr(callback))


def callback_node(callback: Callable[..., Any]) -> str | None:
    """The host a callback belongs to, when its owner is an agent."""
    owner = getattr(callback, "__self__", None)
    return getattr(owner, "host_id", None) if owner is not None else None


def iter_events(rows: Iterator[Mapping[str, Any] | TraceEvent]):
    """Normalize a stream of dicts (JSONL) or events into events."""
    for row in rows:
        yield row if isinstance(row, TraceEvent) else TraceEvent.from_dict(row)
