"""Lightweight sim-engine profiler.

Attach a :class:`SimProfiler` to ``Simulator.profiler`` and every fired
event's callback is timed with ``perf_counter`` and attributed to a
handler label (``SrmAgent._request_timer_fired``, ``Network._flood_arrival``,
...).  The result — events processed and wall-clock per handler — answers
"where does sim wall-clock go?" without any external tooling, and exports
as plain JSON through ``RunSummary.obs``.

The profiler costs two clock reads per event while attached; a detached
engine (``profiler is None``, the default) pays only the branch.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable

from repro.obs.events import callback_label


class SimProfiler:
    """Per-handler event counts and cumulative wall-clock."""

    def __init__(self) -> None:
        #: label -> [events fired, wall-clock seconds in the handler].
        self.handlers: dict[str, list[float]] = {}
        self.events = 0
        self.wall_s = 0.0

    def record_call(
        self, callback: Callable[..., Any], args: tuple[Any, ...]
    ) -> None:
        """Invoke ``callback(*args)``, timing and attributing it."""
        start = perf_counter()
        try:
            callback(*args)
        finally:
            elapsed = perf_counter() - start
            label = callback_label(callback)
            entry = self.handlers.get(label)
            if entry is None:
                self.handlers[label] = [1, elapsed]
            else:
                entry[0] += 1
                entry[1] += elapsed
            self.events += 1
            self.wall_s += elapsed

    def summary(self) -> dict[str, Any]:
        """Per-handler profile, hottest first (JSON-serializable)."""
        return {
            "events": self.events,
            "wall_s": round(self.wall_s, 6),
            "handlers": {
                label: {"events": int(count), "wall_s": round(seconds, 6)}
                for label, (count, seconds) in sorted(
                    self.handlers.items(), key=lambda kv: -kv[1][1]
                )
            },
        }

    def describe(self, top: int = 10) -> str:
        """An ASCII table of the ``top`` hottest handlers."""
        lines = [
            f"profile: {self.events} events, {self.wall_s:.3f}s in handlers",
            f"  {'handler':<44} {'events':>9} {'wall_s':>9}",
        ]
        ranked = sorted(self.handlers.items(), key=lambda kv: -kv[1][1])
        for label, (count, seconds) in ranked[:top]:
            lines.append(f"  {label:<44} {int(count):>9} {seconds:>9.4f}")
        return "\n".join(lines)
