"""The event bus: one :class:`Tracer` per traced simulation run.

Agents, the network, timers, and the invariant monitor all reach the
tracer through ``Simulator.tracer`` — a single plumbing point that is
``None`` by default, so an untraced run pays exactly one attribute load
and an ``is None`` test per would-be event (measured ≤5% on the engine
micro-bench, and unobservable on full runs; see
``benchmarks/bench_obs.py``).

Besides fanning events out to its sinks, the tracer keeps cheap run-level
aggregates — event counts by kind and by node, plus named
:class:`~repro.metrics.stats.Histogram`\\ s fed via :meth:`observe` —
which :func:`~repro.harness.runner.run_trace` folds into
``RunResult.obs`` / ``RunSummary.obs`` so traced artifacts ride the
``repro.exec`` cache alongside the results they explain.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.metrics.stats import Histogram
from repro.obs.events import TraceEvent
from repro.obs.sink import TraceSink


class Tracer:
    """Collects trace events, fans them out to sinks, keeps aggregates."""

    def __init__(self, *sinks: TraceSink) -> None:
        self.sinks: tuple[TraceSink, ...] = sinks
        self.events_by_kind: Counter[str] = Counter()
        self.events_by_node: Counter[str] = Counter()
        self.histograms: dict[str, Histogram] = {}
        self.emitted = 0

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(
        self,
        time: float,
        kind: str,
        node: str | None = None,
        source: str | None = None,
        seqno: int | None = None,
        **detail: Any,
    ) -> None:
        """Record one event (the instrumented layers' entry point)."""
        event = TraceEvent(time, kind, node, source, seqno, detail or None)
        self.events_by_kind[kind] += 1
        if node is not None:
            self.events_by_node[node] += 1
        self.emitted += 1
        for sink in self.sinks:
            sink.emit(event)

    def observe(self, name: str, value: float) -> None:
        """Feed ``value`` into the named histogram (created on demand)."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = Histogram()
            self.histograms[name] = histogram
        histogram.add(value)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """The run-level aggregate exported through ``RunSummary.obs``."""
        return {
            "events_emitted": self.emitted,
            "events_by_kind": dict(sorted(self.events_by_kind.items())),
            "events_by_node": dict(sorted(self.events_by_node.items())),
            "histograms": {
                name: h.to_dict() for name, h in sorted(self.histograms.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tracer(emitted={self.emitted}, sinks={len(self.sinks)})"
