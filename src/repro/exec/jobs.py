"""Declarative, hashable simulation-run specs.

A :class:`RunJob` pins down everything that determines a run's outcome:
the trace (by name, plus the synthesis seed and replay cap that shape it),
the protocol, and the full :class:`~repro.harness.config.SimulationConfig`.
Its :meth:`~RunJob.key` is a stable content digest of that spec; its
:meth:`~RunJob.digest` additionally folds in a fingerprint of the
``repro`` source tree, so cached results self-invalidate whenever the
simulator's code changes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any

from repro.exec.summary import (
    RunSummary,
    SCHEMA_VERSION,
    config_from_dict,
    config_to_dict,
)
from repro.faults import FaultPlan
from repro.harness.config import SimulationConfig
from repro.harness.registry import available_protocols


@dataclass(frozen=True)
class RunJob:
    """One protocol-over-trace simulation, fully specified and hashable."""

    trace: str
    protocol: str
    config: SimulationConfig
    #: Seed and replay cap passed to trace *synthesis* (the replay cap
    #: scales the calibrated loss targets, so it is part of the trace
    #: identity, not just a truncation).
    trace_seed: int = 0
    trace_max_packets: int | None = None
    #: Deterministic fault schedule executed during the run.  Part of the
    #: run's identity: it folds into :meth:`key`/:meth:`digest`, but only
    #: when non-empty, so fault-free digests match pre-fault builds.
    faults: FaultPlan = FaultPlan()
    #: Declarative :mod:`repro.workloads` spec driving the send schedule.
    #: ``""`` (the wire-format default — pre-workload cache entries decode
    #: to it) means the legacy source-paced schedule; like ``faults``, it
    #: folds into :meth:`key`/:meth:`digest` only when non-empty, so
    #: default-schedule digests match pre-workload builds byte for byte.
    workload: str = ""
    #: Declarative :mod:`repro.churn` spec installing a membership
    #: join/leave process over the run.  ``""`` (the wire-format default)
    #: means static membership; like ``faults``/``workload``, it folds
    #: into :meth:`key`/:meth:`digest` only when non-empty, so
    #: static-membership digests match pre-churn builds byte for byte.
    churn: str = ""

    def __post_init__(self) -> None:
        if self.protocol not in available_protocols():
            raise ValueError(
                f"unknown protocol {self.protocol!r}; "
                f"known: {available_protocols()}"
            )
        if self.workload:
            # Validate eagerly so a typo fails at job construction, not in
            # a pool worker three layers down (mirrors the protocol check).
            from repro.workloads import WorkloadError, compile_workload

            try:
                compile_workload(self.workload)
            except WorkloadError as exc:
                raise ValueError(str(exc)) from None
        if self.churn:
            from repro.churn import ChurnError, compile_churn

            try:
                compile_churn(self.churn)
            except ChurnError as exc:
                raise ValueError(str(exc)) from None

    # ------------------------------------------------------------------
    # Serialization (the spec must cross process boundaries)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "trace": self.trace,
            "protocol": self.protocol,
            "config": config_to_dict(self.config),
            "trace_seed": self.trace_seed,
            "trace_max_packets": self.trace_max_packets,
        }
        if not self.faults.empty:
            data["faults"] = self.faults.to_dict()
        if self.workload:
            data["workload"] = self.workload
        if self.churn:
            data["churn"] = self.churn
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunJob":
        # Wire-format compatibility: entries written before fault/workload
        # support lack those keys and decode to the empty defaults.
        return cls(
            trace=data["trace"],
            protocol=data["protocol"],
            config=config_from_dict(data["config"]),
            trace_seed=data["trace_seed"],
            trace_max_packets=data["trace_max_packets"],
            faults=FaultPlan.from_dict(data.get("faults", {"events": []})),
            workload=data.get("workload", ""),
            churn=data.get("churn", ""),
        )

    # ------------------------------------------------------------------
    # Digests
    # ------------------------------------------------------------------
    def key(self) -> str:
        """Content digest of the spec alone (names the cache slot)."""
        payload = json.dumps(
            {"schema": SCHEMA_VERSION, "job": self.to_dict()}, sort_keys=True
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:40]

    def digest(self, fingerprint: str) -> str:
        """Spec digest folded with the source-tree ``fingerprint``: a
        cache entry is valid only while both match."""
        payload = json.dumps(
            {
                "schema": SCHEMA_VERSION,
                "job": self.to_dict(),
                "fingerprint": fingerprint,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def describe(self) -> str:
        parts = [self.protocol, self.trace]
        if self.workload:
            parts.append(self.workload)
        if self.config.cache:
            parts.append(f"cache={self.config.cache}")
        if self.churn:
            parts.append(self.churn)
        return "/".join(parts)


def synthesize_job_trace(
    trace: str, seed: int = 0, max_packets: int | None = None
):
    """Resolve a job's ``trace`` field: a generative topology spec
    (``tree:depth=3,fanout=2``) builds its own tree; a plain name is a
    Table 1 trace.  Deterministic in the arguments."""
    from repro.traces.synthesize import synthesize_trace
    from repro.traces.yajnik import trace_meta
    from repro.workloads import is_topology_spec, synthesize_topology_trace

    if is_topology_spec(trace):
        return synthesize_topology_trace(trace, seed=seed, max_packets=max_packets)
    return synthesize_trace(trace_meta(trace), seed=seed, max_packets=max_packets)


def execute_job(job: RunJob) -> RunSummary:
    """Synthesize the job's trace and run it — the worker-side entry
    point (deterministic in the job spec)."""
    from repro.harness.runner import run_trace

    synthetic = synthesize_job_trace(
        job.trace, seed=job.trace_seed, max_packets=job.trace_max_packets
    )
    return RunSummary.from_result(
        run_trace(
            synthetic,
            job.protocol,
            job.config,
            faults=job.faults,
            workload=job.workload or None,
            churn=job.churn,
        )
    )


@lru_cache(maxsize=8)
def source_fingerprint(root: str | None = None) -> str:
    """SHA-256 over the ``repro`` package sources (paths + contents).

    Folded into every job digest so cached runs invalidate when any
    simulator code changes.  ``root`` overrides the hashed tree (tests).
    """
    if root is None:
        import repro

        base = Path(repro.__file__).resolve().parent
    else:
        base = Path(root).resolve()
    hasher = hashlib.sha256()
    for path in sorted(base.rglob("*.py")):
        hasher.update(str(path.relative_to(base)).encode())
        hasher.update(b"\0")
        hasher.update(path.read_bytes())
        hasher.update(b"\0")
    return hasher.hexdigest()
