"""JSON-serializable reduction of a simulation run.

:class:`~repro.harness.runner.RunResult` cannot cross process or disk
boundaries as-is: its :class:`~repro.metrics.collector.MetricsCollector`
holds ``Counter``\\ s keyed by ``(host, PacketKind, Cast)`` enum tuples and
its crossings snapshot is keyed by tuples — neither survives ``json``.
:class:`RunSummary` flattens every statistic the report layer consumes
into plain lists/dicts (enums by value, tuples as lists) and rehydrates a
full ``RunResult`` on demand, so code downstream of the execution engine
never notices whether a run was fresh, pooled, or read from the cache.

The round trip is lossless: ``RunSummary.from_json(s.to_json())`` equals
``s``, and the rehydrated result reproduces every figure/table value of
the original bit-for-bit (floats survive JSON via ``repr`` round-trip).
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict
from dataclasses import asdict, dataclass, field, fields
from typing import Any

from repro.harness.config import SimulationConfig
from repro.harness.runner import RunResult
from repro.metrics.collector import MetricsCollector, RecoveryRecord
from repro.metrics.overhead import OverheadBreakdown
from repro.net.packet import Cast, PacketKind
from repro.srm.constants import SrmParams

#: Bump when the summary layout changes; mismatching cache entries are
#: treated as misses rather than decoded.
SCHEMA_VERSION = 1


def config_to_dict(config: SimulationConfig) -> dict[str, Any]:
    """``SimulationConfig`` (with nested ``SrmParams``) as plain JSON data.

    The ``cache`` policy spec is omitted when default (``""``),
    ``prime_distances`` when False, and ``kernel`` when ``"python"``, so
    default-config job keys and summaries stay byte-identical to earlier
    builds — the same discipline as the optional ``faults``/``workload``
    summary blocks.
    """
    data = asdict(config)
    if not data["cache"]:
        del data["cache"]
    if not data["prime_distances"]:
        del data["prime_distances"]
    if data["kernel"] == "python":
        del data["kernel"]
    return data


def config_from_dict(data: dict[str, Any]) -> SimulationConfig:
    """Inverse of :func:`config_to_dict` (accepts the pre-cachelab wire
    format: a missing ``cache`` key means the default policy)."""
    payload = dict(data)
    payload["params"] = SrmParams(**payload["params"])
    payload.setdefault("cache", "")
    payload.setdefault("prime_distances", False)
    payload.setdefault("kernel", "python")
    return SimulationConfig(**payload)


@dataclass
class RunSummary:
    """Everything of one run that the figures, tables, and CLI consume."""

    protocol: str
    trace_name: str
    config: dict[str, Any]
    receivers: list[str]
    source: str
    rtt_to_source: dict[str, float]
    #: ``[host, kind value, cast value, count]`` rows, sorted.
    sends: list[list[Any]]
    losses_detected: dict[str, int]
    #: host -> ``[seq, latency, expedited, requests_sent]`` rows in
    #: completion order (the timeline re-sorts by seq itself).
    recoveries: dict[str, list[list[Any]]]
    duplicate_replies: dict[str, int]
    undetected_recoveries: dict[str, int]
    late_arrivals: dict[str, int]
    unrecovered_counts: dict[str, int]
    unrecovered_seqs: dict[str, list[int]]
    overhead: dict[str, int]
    #: ``[kind value, cast value, count]`` rows, sorted.
    crossings: list[list[Any]]
    n_packets: int
    total_losses: int
    sim_time: float
    events_processed: int
    wall_time: float
    schema: int = field(default=SCHEMA_VERSION)
    #: Observability summary (tracer counters / profiler hot-spots) of a
    #: traced run; None (and omitted from the JSON form) otherwise, so
    #: untraced summaries are byte-identical to pre-obs builds.
    obs: dict[str, Any] | None = None
    #: Fault-injection counters of a run that executed a non-empty
    #: :class:`~repro.faults.FaultPlan`; None (and omitted from the JSON
    #: form) otherwise, so fault-free summaries stay byte-identical to
    #: pre-fault builds.
    faults: dict[str, Any] | None = None
    #: Per-workload metrics of a run driven by an explicit
    #: :mod:`repro.workloads` spec; None (and omitted from the JSON form)
    #: on default-schedule runs, so those summaries stay byte-identical to
    #: pre-workload builds.
    workload: dict[str, Any] | None = None
    #: Per-policy cache statistics (inserts / improvements / rejects /
    #: evictions / hit rate / expedited fraction / per-source occupancy)
    #: of a run with an explicit :mod:`repro.core.cachelab` policy; None
    #: (and omitted from the JSON form) on default-cache runs, so those
    #: summaries stay byte-identical to pre-cachelab builds.
    cache: dict[str, Any] | None = None
    #: Membership-churn counters (joins / leaves / skipped-floor events /
    #: final membership) of a run with a non-empty :mod:`repro.churn`
    #: spec; None (and omitted from the JSON form) on static-membership
    #: runs, so those summaries stay byte-identical to pre-churn builds.
    churn: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    # RunResult <-> RunSummary
    # ------------------------------------------------------------------
    @classmethod
    def from_result(cls, result: RunResult) -> "RunSummary":
        metrics = result.metrics
        return cls(
            protocol=result.protocol,
            trace_name=result.trace_name,
            config=config_to_dict(result.config),
            receivers=list(result.receivers),
            source=result.source,
            rtt_to_source=dict(result.rtt_to_source),
            sends=sorted(
                [host, kind.value, cast.value, count]
                for (host, kind, cast), count in metrics.sends.items()
            ),
            losses_detected=dict(metrics.losses_detected),
            recoveries={
                host: [
                    [r.seq, r.latency, r.expedited, r.requests_sent]
                    for r in records
                ]
                for host, records in metrics.recoveries.items()
            },
            duplicate_replies=dict(metrics.duplicate_replies),
            undetected_recoveries=dict(metrics.undetected_recoveries),
            late_arrivals=dict(metrics.late_arrivals),
            unrecovered_counts=dict(metrics.unrecovered),
            unrecovered_seqs={
                host: list(seqs) for host, seqs in result.unrecovered.items()
            },
            overhead={
                "retransmissions": result.overhead.retransmissions,
                "multicast_control": result.overhead.multicast_control,
                "unicast_control": result.overhead.unicast_control,
            },
            crossings=sorted(
                [kind, cast, count]
                for (kind, cast), count in result.crossings_snapshot.items()
            ),
            n_packets=result.n_packets,
            total_losses=result.total_losses,
            sim_time=result.sim_time,
            events_processed=result.events_processed,
            wall_time=result.wall_time,
            obs=result.obs,
            faults=result.faults,
            workload=result.workload,
            cache=result.cache,
            churn=result.churn,
        )

    def to_result(self) -> RunResult:
        """Rehydrate a full ``RunResult`` (enum keys restored)."""
        metrics = MetricsCollector()
        metrics.sends = Counter(
            {
                (host, PacketKind(kind), Cast(cast)): count
                for host, kind, cast, count in self.sends
            }
        )
        metrics.losses_detected = Counter(self.losses_detected)
        recoveries: dict[str, list[RecoveryRecord]] = defaultdict(list)
        for host, rows in self.recoveries.items():
            recoveries[host] = [
                RecoveryRecord(host, seq, latency, bool(expedited), requests)
                for seq, latency, expedited, requests in rows
            ]
        metrics.recoveries = recoveries
        metrics.duplicate_replies = Counter(self.duplicate_replies)
        metrics.undetected_recoveries = Counter(self.undetected_recoveries)
        metrics.late_arrivals = Counter(self.late_arrivals)
        metrics.unrecovered = Counter(self.unrecovered_counts)
        return RunResult(
            protocol=self.protocol,
            trace_name=self.trace_name,
            config=config_from_dict(self.config),
            receivers=tuple(self.receivers),
            source=self.source,
            metrics=metrics,
            overhead=OverheadBreakdown(**self.overhead),
            crossings_snapshot={
                (kind, cast): count for kind, cast, count in self.crossings
            },
            rtt_to_source=dict(self.rtt_to_source),
            unrecovered={
                host: list(seqs) for host, seqs in self.unrecovered_seqs.items()
            },
            n_packets=self.n_packets,
            total_losses=self.total_losses,
            sim_time=self.sim_time,
            events_processed=self.events_processed,
            wall_time=self.wall_time,
            obs=self.obs,
            faults=self.faults,
            workload=self.workload,
            cache=self.cache,
            churn=self.churn,
        )

    # ------------------------------------------------------------------
    # JSON
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        if data["obs"] is None:
            del data["obs"]  # keep untraced summaries byte-stable
        if data["faults"] is None:
            del data["faults"]  # likewise for fault-free summaries
        if data["workload"] is None:
            del data["workload"]  # likewise for default-schedule runs
        if data["cache"] is None:
            del data["cache"]  # likewise for default-cache-policy runs
        if data["churn"] is None:
            del data["churn"]  # likewise for static-membership runs
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunSummary":
        schema = data.get("schema", 0)
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported RunSummary schema {schema!r} "
                f"(this build reads {SCHEMA_VERSION})"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunSummary fields {sorted(unknown)}")
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSummary":
        return cls.from_dict(json.loads(text))
