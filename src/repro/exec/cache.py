"""Persistent content-addressed run cache.

Each completed job stores one JSON file named by the job's content
:meth:`~repro.exec.jobs.RunJob.key` under ``<dir>/runs/``; the payload
records the full digest (spec + source fingerprint), so an entry written
by an older source tree reads back as an *invalidation* — counted, treated
as a miss, and overwritten in place by the fresh result.  Writes go
through a temp file + ``os.replace`` so concurrent processes never
observe a torn entry.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.exec.jobs import RunJob

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/cesrm-repro``."""
    override = os.environ.get(CACHE_DIR_ENV, "")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "cesrm-repro"


@dataclass
class CacheStats:
    """Hit/miss/store/invalidation accounting for one cache handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0

    def describe(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores, {self.invalidations} invalidated"
        )


@dataclass(frozen=True)
class CacheEntry:
    """One stored run, as listed by ``cesrm cache``."""

    key: str
    trace: str
    protocol: str
    seed: int
    max_packets: int | None
    fingerprint: str
    size_bytes: int
    #: Workload spec of the stored run; ``""`` for default-schedule runs
    #: *and* for entries written before workload support existed (the
    #: pre-workload wire format had no ``workload`` key).
    workload: str = ""


@dataclass
class RunCache:
    """On-disk cache of :class:`~repro.exec.summary.RunSummary` payloads."""

    directory: Path = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)

    @property
    def runs_dir(self) -> Path:
        return self.directory / "runs"

    def _path(self, key: str) -> Path:
        return self.runs_dir / f"{key}.json"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, job: RunJob, fingerprint: str) -> dict[str, Any] | None:
        """The stored summary dict for ``job``, or None (miss).  An entry
        whose digest no longer matches (source changed) is a miss and is
        counted as an invalidation."""
        path = self._path(job.key())
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            self.stats.invalidations += 1
            return None
        if payload.get("digest") != job.digest(fingerprint):
            self.stats.misses += 1
            self.stats.invalidations += 1
            return None
        self.stats.hits += 1
        return payload["summary"]

    def put(
        self, job: RunJob, fingerprint: str, summary: dict[str, Any]
    ) -> Path:
        """Atomically store ``summary`` for ``job`` (replacing any stale
        entry in the same slot)."""
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(job.key())
        payload = {
            "digest": job.digest(fingerprint),
            "fingerprint": fingerprint,
            "job": job.to_dict(),
            "summary": summary,
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(self.runs_dir), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    # ------------------------------------------------------------------
    # Inspection / maintenance
    # ------------------------------------------------------------------
    def entries(self) -> list[CacheEntry]:
        out = []
        for path in sorted(self.runs_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                job = payload["job"]
                out.append(
                    CacheEntry(
                        key=path.stem,
                        trace=job["trace"],
                        protocol=job["protocol"],
                        seed=job["config"]["seed"],
                        max_packets=job["trace_max_packets"],
                        fingerprint=payload.get("fingerprint", ""),
                        size_bytes=path.stat().st_size,
                        workload=job.get("workload", ""),
                    )
                )
            except (OSError, KeyError, json.JSONDecodeError, TypeError):
                continue
        return out

    def size_bytes(self) -> int:
        return sum(
            path.stat().st_size
            for path in self.runs_dir.glob("*.json")
            if path.is_file()
        )

    def clear(self) -> int:
        """Delete every stored run; returns how many were removed."""
        removed = 0
        for path in self.runs_dir.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed
