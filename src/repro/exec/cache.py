"""Persistent content-addressed run cache.

Each completed job stores one JSON file named by the job's content
:meth:`~repro.exec.jobs.RunJob.key` under ``<dir>/runs/``; the payload
records the full digest (spec + source fingerprint), so an entry written
by an older source tree reads back as an *invalidation* — counted, treated
as a miss, and overwritten in place by the fresh result.  Writes go
through a temp file + ``os.replace`` so concurrent processes never
observe a torn entry.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.exec.jobs import RunJob

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/cesrm-repro``."""
    override = os.environ.get(CACHE_DIR_ENV, "")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "cesrm-repro"


@dataclass
class CacheStats:
    """Hit/miss/store/invalidation accounting for one cache handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0

    def describe(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores, {self.invalidations} invalidated"
        )


@dataclass(frozen=True)
class CacheEntry:
    """One stored run, as listed by ``cesrm cache``."""

    key: str
    trace: str
    protocol: str
    seed: int
    max_packets: int | None
    fingerprint: str
    size_bytes: int
    #: Workload spec of the stored run; ``""`` for default-schedule runs
    #: *and* for entries written before workload support existed (the
    #: pre-workload wire format had no ``workload`` key).
    workload: str = ""
    #: Cache-policy spec of the stored run; ``""`` for default-policy runs
    #: *and* for entries written before cachelab existed (the pre-cachelab
    #: wire format had no ``cache`` key in the config).
    cache: str = ""
    #: Churn spec of the stored run; ``""`` for static-membership runs
    #: *and* for entries written before churn support existed (the
    #: pre-churn wire format had no ``churn`` key).
    churn: str = ""
    #: Last-modified time of the entry file (what ``prune`` ages on).
    mtime: float = 0.0


@dataclass(frozen=True)
class PruneStats:
    """What one :meth:`RunCache.prune` pass removed and kept."""

    removed: int
    freed_bytes: int
    kept: int
    kept_bytes: int

    def describe(self) -> str:
        return (
            f"pruned {self.removed} entries ({self.freed_bytes} B), "
            f"kept {self.kept} ({self.kept_bytes} B)"
        )


@dataclass
class RunCache:
    """On-disk cache of :class:`~repro.exec.summary.RunSummary` payloads."""

    directory: Path = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)

    @property
    def runs_dir(self) -> Path:
        return self.directory / "runs"

    def _path(self, key: str) -> Path:
        return self.runs_dir / f"{key}.json"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, job: RunJob, fingerprint: str) -> dict[str, Any] | None:
        """The stored summary dict for ``job``, or None (miss).  An entry
        whose digest no longer matches (source changed) is a miss and is
        counted as an invalidation."""
        path = self._path(job.key())
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            self.stats.invalidations += 1
            return None
        if payload.get("digest") != job.digest(fingerprint):
            self.stats.misses += 1
            self.stats.invalidations += 1
            return None
        self.stats.hits += 1
        return payload["summary"]

    def put(
        self, job: RunJob, fingerprint: str, summary: dict[str, Any]
    ) -> Path:
        """Atomically store ``summary`` for ``job`` (replacing any stale
        entry in the same slot)."""
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(job.key())
        payload = {
            "digest": job.digest(fingerprint),
            "fingerprint": fingerprint,
            "job": job.to_dict(),
            "summary": summary,
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(self.runs_dir), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    # ------------------------------------------------------------------
    # Inspection / maintenance
    # ------------------------------------------------------------------
    def entries(self) -> list[CacheEntry]:
        out = []
        for path in sorted(self.runs_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                job = payload["job"]
                stat = path.stat()
                out.append(
                    CacheEntry(
                        key=path.stem,
                        trace=job["trace"],
                        protocol=job["protocol"],
                        seed=job["config"]["seed"],
                        max_packets=job["trace_max_packets"],
                        fingerprint=payload.get("fingerprint", ""),
                        size_bytes=stat.st_size,
                        workload=job.get("workload", ""),
                        cache=job["config"].get("cache", ""),
                        churn=job.get("churn", ""),
                        mtime=stat.st_mtime,
                    )
                )
            except (OSError, KeyError, json.JSONDecodeError, TypeError):
                continue
        return out

    def size_bytes(self) -> int:
        return sum(
            path.stat().st_size
            for path in self.runs_dir.glob("*.json")
            if path.is_file()
        )

    def clear(self) -> int:
        """Delete every stored run; returns how many were removed."""
        removed = 0
        for path in self.runs_dir.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def prune(
        self,
        older_than: float | None = None,
        max_size: int | None = None,
        now: float | None = None,
    ) -> PruneStats:
        """Garbage-collect the cache: drop entries last written more than
        ``older_than`` seconds ago, then — if the survivors still exceed
        ``max_size`` bytes — drop oldest-first until they fit.

        Sweeps grow the cache fast (one entry per grid point per source
        fingerprint); this is the maintenance valve.  ``now`` overrides
        the clock for tests.
        """
        if now is None:
            now = time.time()
        entries: list[tuple[float, int, Path]] = []
        for path in self.runs_dir.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # oldest first

        removed = 0
        freed = 0
        kept: list[tuple[float, int, Path]] = []
        for mtime, size, path in entries:
            if older_than is not None and now - mtime > older_than:
                if self._unlink(path):
                    removed += 1
                    freed += size
                    continue
            kept.append((mtime, size, path))
        if max_size is not None:
            total = sum(size for _, size, _ in kept)
            survivors = []
            for mtime, size, path in kept:
                if total > max_size and self._unlink(path):
                    removed += 1
                    freed += size
                    total -= size
                    continue
                survivors.append((mtime, size, path))
            kept = survivors
        return PruneStats(
            removed=removed,
            freed_bytes=freed,
            kept=len(kept),
            kept_bytes=sum(size for _, size, _ in kept),
        )

    @staticmethod
    def _unlink(path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False


# ----------------------------------------------------------------------
# Human-friendly units for the prune CLI
# ----------------------------------------------------------------------
_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}
_SIZE_UNITS = {"": 1, "b": 1, "k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_age(text: str) -> float:
    """``"7d"``/``"12h"``/``"30m"``/``"45s"`` (or bare seconds) -> seconds."""
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([smhdw]?)\s*", text.lower())
    if not match:
        raise ValueError(
            f"invalid age {text!r}: expected <number>[s|m|h|d|w], e.g. 7d"
        )
    return float(match.group(1)) * _AGE_UNITS.get(match.group(2) or "s", 1.0)


def parse_size(text: str) -> int:
    """``"500M"``/``"2G"``/``"64K"`` (or bare bytes) -> bytes."""
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([kmgb]?)i?b?\s*", text.lower())
    if not match:
        raise ValueError(
            f"invalid size {text!r}: expected <number>[K|M|G], e.g. 500M"
        )
    return int(float(match.group(1)) * _SIZE_UNITS[match.group(2)])
