"""Job-oriented experiment execution: declarative run specs, serializable
result summaries, a persistent content-addressed run cache, and process-pool
fan-out.

The harness used to run every simulation serially in one process and
memoize results only in memory; :mod:`repro.exec` turns each simulation
into a hashable :class:`~repro.exec.jobs.RunJob` whose digest keys an
on-disk cache of :class:`~repro.exec.summary.RunSummary` records, and an
:class:`~repro.exec.pool.ExecutionEngine` fans cache misses out over a
process pool.  A summary rehydrates into a full
:class:`~repro.harness.runner.RunResult`, so figures rendered from cached
or parallel runs are byte-identical to fresh serial ones.
"""

from repro.exec.cache import (
    CacheStats,
    PruneStats,
    RunCache,
    default_cache_dir,
    parse_age,
    parse_size,
)
from repro.exec.jobs import RunJob, execute_job, source_fingerprint
from repro.exec.pool import (
    EngineStats,
    ExecutionEngine,
    JobOutcome,
    default_chunk_size,
)
from repro.exec.summary import RunSummary, config_from_dict, config_to_dict

__all__ = [
    "CacheStats",
    "EngineStats",
    "ExecutionEngine",
    "JobOutcome",
    "PruneStats",
    "RunCache",
    "RunJob",
    "RunSummary",
    "config_from_dict",
    "config_to_dict",
    "default_cache_dir",
    "default_chunk_size",
    "execute_job",
    "parse_age",
    "parse_size",
    "source_fingerprint",
]
