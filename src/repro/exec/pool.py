"""The execution engine: cache lookup + process-pool fan-out.

:meth:`ExecutionEngine.execute` takes a batch of
:class:`~repro.exec.jobs.RunJob` specs and returns rehydrated
:class:`~repro.harness.runner.RunResult`\\ s **in input order**, regardless
of which worker finished first — parallel runs are byte-identical to
serial ones because each simulation is deterministic in its job spec and
results are reduced through :class:`~repro.exec.summary.RunSummary`
either way.  Duplicate specs within a batch execute once.  When the
platform cannot spawn worker processes the engine degrades to serial
execution instead of failing.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from pickle import PicklingError
from typing import Any, Callable, Iterator, Sequence

from repro.exec.cache import RunCache
from repro.exec.jobs import RunJob, execute_job, source_fingerprint
from repro.exec.summary import RunSummary
from repro.harness.runner import RunResult

#: Optional per-job local executor (serial path); lets the harness reuse
#: its memoized traces instead of re-synthesizing.
LocalExecutor = Callable[[RunJob], RunSummary]

#: How many times a broken process pool is rebuilt before the engine
#: gives up on parallelism and fails the remaining jobs.
MAX_POOL_REBUILDS = 3


def _execute_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Worker-process entry point: job dict in, summary dict out (plain
    JSON data on both sides so nothing enum-keyed crosses the pickle
    boundary)."""
    return execute_job(RunJob.from_dict(payload)).to_dict()


def _execute_chunk(payloads: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Worker-process entry point for a *chunk* of jobs: amortizes the
    submit/pickle round-trip when a sweep has thousands of short runs."""
    return [_execute_payload(payload) for payload in payloads]


@dataclass
class EngineStats:
    """What one engine handle did across its batches."""

    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    executed_parallel: int = 0
    #: Job attempts re-queued after a worker/chunk failure.
    retried: int = 0
    #: Jobs abandoned after exhausting their retry budget.
    failed: int = 0

    def describe(self) -> str:
        return (
            f"{self.cache_hits} cached, {self.executed} simulated "
            f"({self.executed_parallel} in workers)"
        )


@dataclass(frozen=True)
class JobOutcome:
    """One job's fate under :meth:`ExecutionEngine.map_unordered`."""

    job: RunJob
    summary: RunSummary | None
    #: True when the summary came from the run cache (zero recomputation).
    cached: bool
    #: Execution attempts consumed (0 for a cache hit).
    attempts: int
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.summary is not None


@dataclass
class ExecutionEngine:
    """Runs job batches through the cache and an optional process pool."""

    #: Worker processes for cache misses (1 = serial, the default).
    jobs: int = 1
    cache: RunCache | None = None
    #: Progress sink (e.g. ``lambda msg: print(msg, file=sys.stderr)``).
    progress: Callable[[str], None] | None = None
    stats: EngineStats = field(default_factory=EngineStats)

    def execute(
        self,
        run_jobs: Sequence[RunJob],
        local_executor: LocalExecutor | None = None,
    ) -> list[RunResult]:
        """Execute ``run_jobs`` (deduplicated) and return results in the
        order the jobs were given."""
        fingerprint = source_fingerprint()
        order: list[str] = []
        unique: dict[str, RunJob] = {}
        for job in run_jobs:
            key = job.key()
            order.append(key)
            unique.setdefault(key, job)

        results: dict[str, RunResult] = {}
        pending: list[RunJob] = []
        for key, job in unique.items():
            summary_dict = (
                self.cache.get(job, fingerprint) if self.cache else None
            )
            if summary_dict is not None:
                try:
                    results[key] = RunSummary.from_dict(summary_dict).to_result()
                    self.stats.cache_hits += 1
                    continue
                except (ValueError, TypeError, KeyError):
                    pass  # undecodable entry: recompute and overwrite
            self.stats.cache_misses += 1
            pending.append(job)

        if pending:
            self._report(
                f"[exec] {len(pending)} job(s) to run, "
                f"{len(unique) - len(pending)} cached"
            )
            summaries = self._run_pending(pending, local_executor)
            for job, summary in zip(pending, summaries):
                if self.cache is not None:
                    self.cache.put(job, fingerprint, summary.to_dict())
                results[job.key()] = summary.to_result()
            self.stats.executed += len(pending)
        return [results[key] for key in order]

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _run_pending(
        self, pending: list[RunJob], local_executor: LocalExecutor | None
    ) -> list[RunSummary]:
        if self.jobs > 1 and len(pending) > 1:
            try:
                summaries = self._run_parallel(pending)
                self.stats.executed_parallel += len(pending)
                return summaries
            except (OSError, ImportError, PicklingError, RuntimeError) as exc:
                self._report(
                    f"[exec] process pool unavailable ({exc!r}); "
                    "running serially"
                )
        return self._run_serial(pending, local_executor)

    def _run_serial(
        self, pending: list[RunJob], local_executor: LocalExecutor | None
    ) -> list[RunSummary]:
        run = local_executor or execute_job
        out = []
        for index, job in enumerate(pending):
            out.append(run(job))
            self._report(
                f"[exec] {index + 1}/{len(pending)} done ({job.describe()})"
            )
        return out

    def _run_parallel(self, pending: list[RunJob]) -> list[RunSummary]:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_execute_payload, job.to_dict()) for job in pending
            ]
            summaries = []
            for index, (job, future) in enumerate(zip(pending, futures)):
                summaries.append(RunSummary.from_dict(future.result()))
                self._report(
                    f"[exec] {index + 1}/{len(pending)} done ({job.describe()})"
                )
        return summaries

    # ------------------------------------------------------------------
    # Streaming execution (the repro.sweep scheduler's substrate)
    # ------------------------------------------------------------------
    def map_unordered(
        self,
        run_jobs: Sequence[RunJob],
        chunk_size: int | None = None,
        retries: int = 2,
    ) -> Iterator[JobOutcome]:
        """Execute ``run_jobs`` (deduplicated) and yield one
        :class:`JobOutcome` per unique job **as each completes**.

        Unlike :meth:`execute`, which batches and re-orders, this is the
        fleet path: cache hits surface immediately, misses are packed
        into chunks and pulled by pool workers as they free up (late
        binding — an idle worker steals the next chunk off the shared
        queue rather than owning a pre-assigned shard), every completed
        job is written to the cache the moment its chunk lands (the
        cache is the sweep checkpoint: ``kill -9`` loses at most the
        in-flight chunks), and a job that dies with its worker is
        retried — as a singleton, so one poisoned job cannot re-fail its
        chunk-mates — up to ``retries`` extra attempts before it is
        reported failed instead of aborting the sweep.
        """
        fingerprint = source_fingerprint()
        unique: dict[str, RunJob] = {}
        for job in run_jobs:
            unique.setdefault(job.key(), job)

        pending: list[RunJob] = []
        for job in unique.values():
            summary = self._cached_summary(job, fingerprint)
            if summary is not None:
                self.stats.cache_hits += 1
                yield JobOutcome(job, summary, cached=True, attempts=0)
                continue
            self.stats.cache_misses += 1
            pending.append(job)
        if not pending:
            return
        self._report(
            f"[exec] {len(pending)} job(s) to run, "
            f"{len(unique) - len(pending)} cached"
        )
        if self.jobs > 1 and len(pending) > 1:
            try:
                yield from self._map_parallel(
                    pending, fingerprint, chunk_size, retries
                )
                return
            except (OSError, ImportError, PicklingError, RuntimeError) as exc:
                self._report(
                    f"[exec] process pool unavailable ({exc!r}); "
                    "running serially"
                )
        yield from self._map_serial(pending, fingerprint, retries)

    def _cached_summary(
        self, job: RunJob, fingerprint: str
    ) -> RunSummary | None:
        if self.cache is None:
            return None
        summary_dict = self.cache.get(job, fingerprint)
        if summary_dict is None:
            return None
        try:
            return RunSummary.from_dict(summary_dict)
        except (ValueError, TypeError, KeyError):
            return None  # undecodable entry: recompute and overwrite

    def _finish_job(
        self, job: RunJob, summary: RunSummary, fingerprint: str, attempts: int
    ) -> JobOutcome:
        if self.cache is not None:
            self.cache.put(job, fingerprint, summary.to_dict())
        self.stats.executed += 1
        return JobOutcome(job, summary, cached=False, attempts=attempts)

    def _fail_job(self, job: RunJob, attempts: int, error: str) -> JobOutcome:
        self.stats.failed += 1
        self._report(
            f"[exec] giving up on {job.describe()} after "
            f"{attempts} attempt(s): {error}"
        )
        return JobOutcome(job, None, cached=False, attempts=attempts, error=error)

    def _map_serial(
        self, pending: list[RunJob], fingerprint: str, retries: int
    ) -> Iterator[JobOutcome]:
        for job in pending:
            attempts = 0
            while True:
                attempts += 1
                try:
                    summary = execute_job(job)
                except Exception as exc:  # noqa: BLE001 - retried, then surfaced
                    if attempts > retries:
                        yield self._fail_job(job, attempts, repr(exc))
                        break
                    self.stats.retried += 1
                    self._report(
                        f"[exec] retrying {job.describe()} "
                        f"(attempt {attempts} failed: {exc!r})"
                    )
                    continue
                yield self._finish_job(job, summary, fingerprint, attempts)
                break

    def _map_parallel(
        self,
        pending: list[RunJob],
        fingerprint: str,
        chunk_size: int | None,
        retries: int,
    ) -> Iterator[JobOutcome]:
        workers = min(self.jobs, len(pending))
        size = chunk_size or default_chunk_size(len(pending), workers)
        #: Each queue entry is ``(jobs, attempts)`` — attempts counts
        #: execution tries already consumed by every job in the chunk.
        queue: deque[tuple[list[RunJob], int]] = deque(
            (pending[i : i + size], 0) for i in range(0, len(pending), size)
        )
        rebuilds = 0
        pool = ProcessPoolExecutor(max_workers=workers)
        in_flight: dict[Any, tuple[list[RunJob], int]] = {}
        try:
            while queue or in_flight:
                while queue and len(in_flight) < workers:
                    chunk, attempts = queue.popleft()
                    future = pool.submit(
                        _execute_chunk, [job.to_dict() for job in chunk]
                    )
                    in_flight[future] = (chunk, attempts)
                done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    chunk, attempts = in_flight.pop(future)
                    try:
                        summaries = future.result()
                    except BrokenExecutor as exc:
                        broken = True
                        for outcome in self._requeue(
                            queue, chunk, attempts + 1, retries, exc
                        ):
                            yield outcome
                        continue
                    except Exception as exc:  # noqa: BLE001 - split and retry
                        for outcome in self._requeue(
                            queue, chunk, attempts + 1, retries, exc
                        ):
                            yield outcome
                        continue
                    for job, summary_dict in zip(chunk, summaries):
                        self.stats.executed_parallel += 1
                        yield self._finish_job(
                            job,
                            RunSummary.from_dict(summary_dict),
                            fingerprint,
                            attempts + 1,
                        )
                if broken:
                    # A dead worker poisons the whole pool: reclaim every
                    # in-flight chunk (their failures are collateral, so
                    # their attempt counts are preserved) and rebuild.
                    for future, (chunk, attempts) in in_flight.items():
                        future.cancel()
                        queue.appendleft((chunk, attempts))
                    in_flight.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    rebuilds += 1
                    if rebuilds > MAX_POOL_REBUILDS:
                        while queue:
                            chunk, attempts = queue.popleft()
                            for job in chunk:
                                yield self._fail_job(
                                    job, attempts, "process pool kept breaking"
                                )
                        return
                    self._report(
                        f"[exec] process pool broke; rebuilding "
                        f"({rebuilds}/{MAX_POOL_REBUILDS})"
                    )
                    pool = ProcessPoolExecutor(max_workers=workers)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _requeue(
        self,
        queue: deque[tuple[list[RunJob], int]],
        chunk: list[RunJob],
        attempts: int,
        retries: int,
        exc: BaseException,
    ) -> Iterator[JobOutcome]:
        """Put a failed chunk's jobs back on the queue as singletons (so
        one bad job cannot keep sinking its chunk-mates); jobs that are
        out of retry budget are yielded as failed outcomes instead."""
        for job in chunk:
            if attempts > retries:
                yield self._fail_job(job, attempts, repr(exc))
            else:
                self.stats.retried += 1
                self._report(
                    f"[exec] re-queueing {job.describe()} "
                    f"(attempt {attempts} failed: {exc!r})"
                )
                queue.append(([job], attempts))

    def _report(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)


def default_chunk_size(n_jobs: int, workers: int) -> int:
    """Chunks sized so each worker sees ~4 of them: big enough to
    amortize pickling, small enough that work stealing can rebalance
    stragglers (and that a kill loses little)."""
    return max(1, min(32, -(-n_jobs // (workers * 4))))
