"""The execution engine: cache lookup + process-pool fan-out.

:meth:`ExecutionEngine.execute` takes a batch of
:class:`~repro.exec.jobs.RunJob` specs and returns rehydrated
:class:`~repro.harness.runner.RunResult`\\ s **in input order**, regardless
of which worker finished first — parallel runs are byte-identical to
serial ones because each simulation is deterministic in its job spec and
results are reduced through :class:`~repro.exec.summary.RunSummary`
either way.  Duplicate specs within a batch execute once.  When the
platform cannot spawn worker processes the engine degrades to serial
execution instead of failing.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pickle import PicklingError
from typing import Any, Callable, Sequence

from repro.exec.cache import RunCache
from repro.exec.jobs import RunJob, execute_job, source_fingerprint
from repro.exec.summary import RunSummary
from repro.harness.runner import RunResult

#: Optional per-job local executor (serial path); lets the harness reuse
#: its memoized traces instead of re-synthesizing.
LocalExecutor = Callable[[RunJob], RunSummary]


def _execute_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Worker-process entry point: job dict in, summary dict out (plain
    JSON data on both sides so nothing enum-keyed crosses the pickle
    boundary)."""
    return execute_job(RunJob.from_dict(payload)).to_dict()


@dataclass
class EngineStats:
    """What one engine handle did across its batches."""

    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    executed_parallel: int = 0

    def describe(self) -> str:
        return (
            f"{self.cache_hits} cached, {self.executed} simulated "
            f"({self.executed_parallel} in workers)"
        )


@dataclass
class ExecutionEngine:
    """Runs job batches through the cache and an optional process pool."""

    #: Worker processes for cache misses (1 = serial, the default).
    jobs: int = 1
    cache: RunCache | None = None
    #: Progress sink (e.g. ``lambda msg: print(msg, file=sys.stderr)``).
    progress: Callable[[str], None] | None = None
    stats: EngineStats = field(default_factory=EngineStats)

    def execute(
        self,
        run_jobs: Sequence[RunJob],
        local_executor: LocalExecutor | None = None,
    ) -> list[RunResult]:
        """Execute ``run_jobs`` (deduplicated) and return results in the
        order the jobs were given."""
        fingerprint = source_fingerprint()
        order: list[str] = []
        unique: dict[str, RunJob] = {}
        for job in run_jobs:
            key = job.key()
            order.append(key)
            unique.setdefault(key, job)

        results: dict[str, RunResult] = {}
        pending: list[RunJob] = []
        for key, job in unique.items():
            summary_dict = (
                self.cache.get(job, fingerprint) if self.cache else None
            )
            if summary_dict is not None:
                try:
                    results[key] = RunSummary.from_dict(summary_dict).to_result()
                    self.stats.cache_hits += 1
                    continue
                except (ValueError, TypeError, KeyError):
                    pass  # undecodable entry: recompute and overwrite
            self.stats.cache_misses += 1
            pending.append(job)

        if pending:
            self._report(
                f"[exec] {len(pending)} job(s) to run, "
                f"{len(unique) - len(pending)} cached"
            )
            summaries = self._run_pending(pending, local_executor)
            for job, summary in zip(pending, summaries):
                if self.cache is not None:
                    self.cache.put(job, fingerprint, summary.to_dict())
                results[job.key()] = summary.to_result()
            self.stats.executed += len(pending)
        return [results[key] for key in order]

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _run_pending(
        self, pending: list[RunJob], local_executor: LocalExecutor | None
    ) -> list[RunSummary]:
        if self.jobs > 1 and len(pending) > 1:
            try:
                summaries = self._run_parallel(pending)
                self.stats.executed_parallel += len(pending)
                return summaries
            except (OSError, ImportError, PicklingError, RuntimeError) as exc:
                self._report(
                    f"[exec] process pool unavailable ({exc!r}); "
                    "running serially"
                )
        return self._run_serial(pending, local_executor)

    def _run_serial(
        self, pending: list[RunJob], local_executor: LocalExecutor | None
    ) -> list[RunSummary]:
        run = local_executor or execute_job
        out = []
        for index, job in enumerate(pending):
            out.append(run(job))
            self._report(
                f"[exec] {index + 1}/{len(pending)} done ({job.describe()})"
            )
        return out

    def _run_parallel(self, pending: list[RunJob]) -> list[RunSummary]:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_execute_payload, job.to_dict()) for job in pending
            ]
            summaries = []
            for index, (job, future) in enumerate(zip(pending, futures)):
                summaries.append(RunSummary.from_dict(future.result()))
                self._report(
                    f"[exec] {index + 1}/{len(pending)} done ({job.describe()})"
                )
        return summaries

    def _report(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)
