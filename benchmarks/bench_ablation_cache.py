"""Ablation — recovery-tuple cache capacity (§3.1/§4.3).

Under the most-recent-loss policy a single cache entry suffices: results
must be insensitive to capacity (the paper singles this out as the
policy's implementation advantage)."""

from repro.harness.experiments import ablation_cache_capacity
from repro.harness.report import render_ablation

from benchmarks.conftest import run_once


def test_ablation_cache_capacity(benchmark, ctx, save_report):
    rows = run_once(benchmark, ablation_cache_capacity, ctx)
    base = rows[0]
    for row in rows[1:]:
        assert abs(row.avg_normalized_latency - base.avg_normalized_latency) < 0.05
        assert abs(row.expedited_success_pct - base.expedited_success_pct) < 2.0
    save_report(
        "ablation_cache", render_ablation(rows, "Ablation — cache capacity")
    )
