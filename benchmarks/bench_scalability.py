"""Scalability sweep: group size 8 → 40 receivers.

Not a paper figure, but the property both protocols are named for.  The
expected shapes: recovery stays fully reliable at every size; CESRM's
latency advantage persists as the group grows; and SRM's retransmission
overhead grows faster than CESRM's (suppression gets harder with more
receivers while one expedited reply always suffices).
"""

from repro.harness.config import SimulationConfig
from repro.harness.report import render_table
from repro.harness.runner import run_trace
from repro.metrics.stats import mean
from repro.traces.synthesize import SynthesisParams, synthesize_trace

from benchmarks.conftest import run_once

GROUP_SIZES = (8, 16, 24, 40)
N_PACKETS = 1200


def _sweep():
    rows = []
    config = SimulationConfig()
    for size in GROUP_SIZES:
        params = SynthesisParams(
            name=f"scale-{size}",
            n_receivers=size,
            tree_depth=5,
            period=0.08,
            n_packets=N_PACKETS,
            # keep the per-receiver loss rate constant across sizes
            target_losses=round(0.05 * size * N_PACKETS),
        )
        synthetic = synthesize_trace(params, seed=2)
        for protocol in ("srm", "cesrm"):
            result = run_trace(synthetic, protocol, config)
            latency = mean(
                [result.avg_normalized_recovery_time(r) for r in result.receivers]
            )
            rows.append(
                (
                    size,
                    protocol,
                    round(latency, 2),
                    result.overhead.retransmissions,
                    result.overhead.control,
                    result.unrecovered_losses,
                )
            )
    return rows


def test_scalability(benchmark, save_report):
    rows = run_once(benchmark, _sweep)
    by_key = {(r[0], r[1]): r for r in rows}
    for size in GROUP_SIZES:
        srm = by_key[(size, "srm")]
        cesrm = by_key[(size, "cesrm")]
        assert srm[5] == cesrm[5] == 0, size  # reliable at every size
        assert cesrm[2] < srm[2], size  # CESRM faster at every size
        assert cesrm[3] < srm[3], size  # and cheaper in repair traffic
    save_report(
        "scalability",
        "Scalability — group-size sweep\n"
        + render_table(
            ["Receivers", "Protocol", "AvgLat(RTT)", "RetxUnits", "CtlUnits", "Unrec"],
            rows,
        ),
    )
