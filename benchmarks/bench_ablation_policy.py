"""Ablation — expeditious-pair selection policy (§3.2, §4.3).

The paper (citing the [10] trace analysis) uses most-recent-loss because
loss location correlates most strongly with the most recent loss; this
bench confirms most-recent is at least as good as most-frequent."""

from repro.harness.experiments import ablation_policy
from repro.harness.report import render_ablation
from repro.metrics.stats import mean

from benchmarks.conftest import run_once


def test_ablation_policy(benchmark, ctx, save_report):
    rows = run_once(benchmark, ablation_policy, ctx)
    recent = [r for r in rows if r.label == "most-recent"]
    frequent = [r for r in rows if r.label == "most-frequent"]
    assert len(recent) == len(frequent) == 6
    mean_recent = mean([r.avg_normalized_latency for r in recent])
    mean_frequent = mean([r.avg_normalized_latency for r in frequent])
    assert mean_recent <= mean_frequent * 1.05  # most-recent wins (or ties)
    for row in rows:
        assert row.unrecovered == 0
    save_report("ablation_policy", render_ablation(rows, "Ablation — selection policy"))
