"""Microbenchmarks of the substrates (real multi-round timings).

These are conventional pytest-benchmark measurements of the hot paths:
event-loop throughput, multicast flooding, trace synthesis, link-rate
inference, and pattern attribution.
"""

import random

from repro.net.network import Network
from repro.net.packet import Packet, PacketKind
from repro.net.topology import build_random_tree
from repro.sim.engine import Simulator
from repro.traces.attribution import Attributor
from repro.traces.inference import estimate_link_rates_subtree
from repro.traces.synthesize import SynthesisParams, synthesize_trace


def test_event_loop_throughput(benchmark):
    """Schedule-and-fire cost of the core event loop (10k events)."""

    def run():
        sim = Simulator()
        sink = []
        for i in range(10_000):
            sim.schedule(i * 0.001, sink.append, i)
        sim.run()
        return len(sink)

    assert benchmark(run) == 10_000


def test_multicast_flood_throughput(benchmark):
    """Cost of flooding 100 control packets over a 20-receiver tree."""
    tree = build_random_tree(20, 5, random.Random(0))

    class Sink:
        def receive(self, packet):
            pass

    def run():
        sim = Simulator()
        network = Network(sim, tree)
        for host in tree.hosts:
            network.attach(host, Sink())
        for seq in range(100):
            network.multicast(
                Packet(
                    kind=PacketKind.SESSION,
                    origin=tree.receivers[seq % len(tree.receivers)],
                    source="s",
                    seqno=seq,
                    size_bytes=0,
                )
            )
        sim.run()
        return network.crossings.total()

    crossings = benchmark(run)
    assert crossings == 100 * len(tree.links)


def test_trace_synthesis_throughput(benchmark):
    """Synthesis of a 10k-packet, 10-receiver calibrated trace."""
    params = SynthesisParams(
        name="micro",
        n_receivers=10,
        tree_depth=5,
        period=0.08,
        n_packets=10_000,
        target_losses=5_000,
    )
    synthetic = benchmark(synthesize_trace, params, 3)
    assert synthetic.trace.total_losses > 0


def test_inference_throughput(benchmark):
    """Subtree-method link-rate estimation over a 10k-packet trace."""
    params = SynthesisParams(
        name="micro-inf",
        n_receivers=10,
        tree_depth=5,
        period=0.08,
        n_packets=10_000,
        target_losses=5_000,
    )
    synthetic = synthesize_trace(params, seed=4)
    rates = benchmark(estimate_link_rates_subtree, synthetic.trace)
    assert rates


def test_attribution_throughput(benchmark):
    """Whole-trace pattern attribution (DP + per-pattern cache)."""
    params = SynthesisParams(
        name="micro-att",
        n_receivers=10,
        tree_depth=5,
        period=0.08,
        n_packets=10_000,
        target_losses=5_000,
    )
    synthetic = synthesize_trace(params, seed=5)
    rates = estimate_link_rates_subtree(synthetic.trace)

    def run():
        attributor = Attributor(synthetic.trace.tree, rates)
        return attributor.attribute_trace(synthetic.trace)

    result = benchmark(run)
    assert len(result.combos) == len(synthetic.trace.lossy_packets())
