"""Ablation — REORDER-DELAY sweep (§3.2).

The guard prevents spurious expedited requests under reordering; our
replay has none, so latency should grow roughly linearly with the delay
while success stays flat (Eq. (2): expedited = REORDER-DELAY + RTT)."""

from repro.harness.experiments import ablation_reorder_delay
from repro.harness.report import render_ablation

from benchmarks.conftest import run_once


def test_ablation_reorder_delay(benchmark, ctx, save_report):
    rows = run_once(benchmark, ablation_reorder_delay, ctx)
    latencies = [r.avg_normalized_latency for r in rows]
    assert latencies == sorted(latencies)  # monotone in the guard
    assert latencies[-1] > latencies[0]
    save_report(
        "ablation_reorder", render_ablation(rows, "Ablation — REORDER-DELAY")
    )
