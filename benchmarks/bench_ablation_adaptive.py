"""Ablation — fixed vs adaptive SRM request timers (ToN '97 §V).

The adaptive variant steers C1/C2 per member from observed duplicates and
delay.  Expected shape: adaptation trades the two signals — it never loses
reliability, and it moves duplicate-request volume and recovery latency
away from the fixed setting in opposite directions depending on the trace.
"""

from repro.harness.report import render_table
from repro.metrics.stats import mean
from repro.net.packet import PacketKind
from repro.traces.yajnik import FIGURE_TRACES

from benchmarks.conftest import run_once


def _compare(ctx):
    rows = []
    for name in FIGURE_TRACES[:4]:
        for protocol in ("srm", "srm-adaptive"):
            result = ctx.run(name, protocol)
            latency = mean(
                [result.avg_normalized_recovery_time(r) for r in result.receivers]
            )
            rows.append(
                (
                    name,
                    protocol,
                    round(latency, 2),
                    result.metrics.total_sends(PacketKind.RQST),
                    sum(result.metrics.duplicate_replies.values()),
                    result.unrecovered_losses,
                )
            )
    return rows


def test_ablation_adaptive_timers(benchmark, ctx, save_report):
    rows = run_once(benchmark, _compare, ctx)
    by_key = {(r[0], r[1]): r for r in rows}
    for name in FIGURE_TRACES[:4]:
        fixed = by_key[(name, "srm")]
        adaptive = by_key[(name, "srm-adaptive")]
        assert fixed[5] == adaptive[5] == 0  # both fully reliable
        # adaptation visibly changes behaviour
        assert (fixed[2], fixed[3]) != (adaptive[2], adaptive[3]), name
    save_report(
        "ablation_adaptive",
        "Ablation — adaptive request timers\n"
        + render_table(
            ["Trace", "Protocol", "AvgLat(RTT)", "Requests", "DupReplies", "Unrec"],
            rows,
        ),
    )
