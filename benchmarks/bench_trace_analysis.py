"""Loss-locality analysis of the 14 traces (the [10] study the paper cites).

Verifies, per trace, the measured properties CESRM's design is built on:
temporal locality (conditional loss rate ≫ marginal), burstiness, spatial
concentration on a few links, and most-recent-loss predictive accuracy —
§4.3's justification for the most-recent selection policy.
"""

from repro.harness.report import render_table
from repro.traces.analysis import analyze_trace
from repro.traces.yajnik import YAJNIK_TRACES

from benchmarks.conftest import run_once


def _analyze_all(ctx):
    rows = []
    for meta in YAJNIK_TRACES:
        report = analyze_trace(ctx.trace(meta.name))
        rows.append(
            (
                meta.name,
                round(report.mean_burst_length, 2),
                round(report.mean_locality_gain, 1),
                round(report.concentration.top_fraction(3), 2),
                round(report.policies.most_recent_accuracy, 2),
                round(report.policies.most_frequent_accuracy, 2),
            )
        )
    return rows


def test_trace_locality_analysis(benchmark, ctx, save_report):
    rows = run_once(benchmark, _analyze_all, ctx)
    assert len(rows) == 14
    for name, burst, gain, top3, recent, frequent in rows:
        # temporal locality: bursts are real, conditional ≫ marginal
        assert burst > 1.3, name
        assert gain > 2.0, name
        # spatial locality: the 3 lossiest links carry most loss events
        assert top3 > 0.5, name
        # the most-recent prediction lands well above chance
        assert recent > 0.45, name
    text = "[10]-style locality analysis\n" + render_table(
        ["Trace", "MeanBurst", "CondGain", "Top3Links", "RecentAcc", "FreqAcc"],
        rows,
    )
    save_report("trace_analysis", text)
