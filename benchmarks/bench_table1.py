"""Table 1 — synthesize all 14 traces and report target vs realized loss
volumes (targets scale with the replay truncation)."""

from repro.harness.experiments import table1
from repro.harness.report import render_table1

from benchmarks.conftest import run_once


def test_table1(benchmark, ctx, save_report):
    rows = run_once(benchmark, table1, ctx)
    assert len(rows) == 14
    for row in rows:
        assert row.synthesized_losses > 0
        assert row.loss_error < 0.35
    save_report("table1", render_table1(rows))
