"""Figure 3 — request packets sent per host: SRM multicast requests vs
CESRM multicast (fall-back) + unicast (expedited) requests."""

from repro.harness.experiments import figure3
from repro.harness.report import render_packet_counts

from benchmarks.conftest import run_once


def test_figure3(benchmark, ctx, save_report):
    results = run_once(benchmark, figure3, ctx)
    assert len(results) == 6
    for res in results:
        # the source ("receiver 0") never requests
        assert res.srm[0] == 0 and res.cesrm_multicast[0] == 0
        # CESRM multicasts far fewer requests than SRM; a large share of
        # its requests are cheap unicasts (§4.4)
        assert sum(res.cesrm_multicast) < sum(res.srm), res.trace
        assert sum(res.cesrm_expedited) > 0, res.trace
    save_report("figure3", render_packet_counts(results, "Figure 3 (requests)"))
