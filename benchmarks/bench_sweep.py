"""Sweep scheduler throughput: cold fan-out vs fully-cached resume.

Runs the CI smoke grid (8 jobs, 400 packets each) twice against a
throwaway cache/store: the first pass simulates everything through the
chunked work-stealing pool path, the second is a pure resume — every
job is a cache hit, nothing recomputes.  Records, per pass, jobs/sec
and the wall time, plus the resume speedup (warm must beat cold by a
wide margin or resumability isn't buying anything).  Results go to
``BENCH_sweep.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.exec.cache import RunCache
from repro.exec.pool import ExecutionEngine
from repro.sweep import SweepStore, load_sweep, run_sweep

from benchmarks.conftest import bench_jobs

RESULT_PATH = Path(__file__).parent.parent / "BENCH_sweep.json"
SPEC_PATH = Path(__file__).parent.parent / "examples" / "smoke_grid.toml"


def _pass(spec, cache_dir, store_path, jobs):
    engine = ExecutionEngine(jobs=jobs, cache=RunCache(cache_dir))
    with SweepStore(store_path) as store:
        started = time.perf_counter()
        report = run_sweep(spec, engine=engine, store=store)
        elapsed = time.perf_counter() - started
    return report, elapsed


def test_sweep_throughput(tmp_path):
    spec = load_sweep(SPEC_PATH)
    jobs = max(bench_jobs(), 2)
    cache_dir = tmp_path / "cache"
    store_path = tmp_path / "sweeps.sqlite"

    cold, cold_s = _pass(spec, cache_dir, store_path, jobs)
    warm, warm_s = _pass(spec, cache_dir, store_path, jobs)

    # Cold executes everything; warm is a pure cache replay.
    assert cold.executed == len(spec.cases) and cold.failed == 0
    assert warm.cached == len(spec.cases) and warm.executed == 0

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    payload = {
        "suite": "sweep",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "grid": {
            "spec": SPEC_PATH.name,
            "digest": spec.digest(),
            "n_jobs": len(spec.cases),
            "workers": jobs,
        },
        "cold": {
            "seconds": round(cold_s, 4),
            "jobs_per_sec": round(len(spec.cases) / cold_s, 2),
        },
        "warm": {
            "seconds": round(warm_s, 4),
            "jobs_per_sec": round(len(spec.cases) / warm_s, 2),
        },
        "resume_speedup": round(speedup, 1),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # The checkpointed resume must dominate recomputation.
    assert speedup >= 5, f"cache resume only {speedup:.1f}x faster than cold"
