"""Ablation — link propagation delay 10/20/30 ms (§4.3).

The paper ran all three and found "very similar" results; in normalized
(RTT) units the latencies must be insensitive to the absolute delay."""

from repro.harness.experiments import ablation_link_delay
from repro.harness.report import render_ablation

from benchmarks.conftest import run_once


def test_ablation_link_delay(benchmark, ctx, save_report):
    rows = run_once(benchmark, ablation_link_delay, ctx)
    for protocol in ("srm", "cesrm"):
        values = [
            r.avg_normalized_latency for r in rows if r.label.startswith(protocol)
        ]
        assert len(values) == 3
        spread = (max(values) - min(values)) / max(values)
        assert spread < 0.35, (protocol, values)
    save_report("ablation_delay", render_ablation(rows, "Ablation — link delay"))
