"""Ablation — lossy recovery traffic (§4.3).

The paper simulated recovery-packet drops at the estimated link rates in
[10]: latencies grow slightly and CESRM's advantage persists."""

from repro.harness.experiments import ablation_lossy_recovery
from repro.harness.report import render_ablation
from repro.metrics.stats import mean

from benchmarks.conftest import run_once


def test_ablation_lossy_recovery(benchmark, ctx, save_report):
    rows = run_once(benchmark, ablation_lossy_recovery, ctx)

    def avg(protocol, label):
        values = [
            r.avg_normalized_latency
            for r in rows
            if r.label == f"{protocol}/{label}"
        ]
        return mean(values)

    # CESRM keeps winning with lossy recovery
    assert avg("cesrm", "lossy") < avg("srm", "lossy")
    # and lossy latencies are not better than lossless ones
    assert avg("srm", "lossy") >= avg("srm", "lossless") * 0.9
    save_report(
        "ablation_lossy", render_ablation(rows, "Ablation — lossy recovery")
    )
