"""Protocol behaviour across declarative workload families.

The workload DSL makes the offered-traffic side of an experiment a
swept axis like the protocol or the trace.  This benchmark runs every
built-in family (constant-rate through flash crowd) over one synthetic
tree for SRM and CESRM and records, per (workload, protocol):

* offered load and the realized event count/senders,
* mean normalized recovery latency and the recovery count, and
* the expedited fraction (CESRM only — SRM has no expedited machinery),

plus per-workload latency percentiles straight from the run's workload
stats block.  Reliability must hold under every family: no receiver is
left with an unrecovered loss.  Results go to ``BENCH_workloads.json``
at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.metrics.stats import mean
from repro.traces.synthesize import SynthesisParams, synthesize_trace

RESULT_PATH = Path(__file__).parent.parent / "BENCH_workloads.json"

#: Every built-in family, parameterized to distinct traffic shapes.
WORKLOADS = (
    "cbr",
    "poisson",
    "zipf:alpha=1.2,objects=64,train=8",
    "flash_crowd:peak=8,ramp=2",
    "diurnal:period=10s,min=0.3",
    "multi_source:senders=4",
)

PROTOCOLS = ("srm", "cesrm")


def bench_tree():
    params = SynthesisParams(
        name="bench-workloads",
        n_receivers=8,
        tree_depth=3,
        period=0.05,
        n_packets=600,
        target_losses=200,
    )
    return synthesize_trace(params, seed=7)


def run_stats(result) -> dict:
    latencies: list[float] = []
    expedited = fallback = 0
    for receiver in result.receivers:
        latencies.extend(result.normalized_latencies(receiver))
        expedited += result.metrics.recovery_count(receiver, expedited=True)
        fallback += result.metrics.recovery_count(receiver, expedited=False)
    total = expedited + fallback
    w = result.workload
    stats = {
        "events": w["events"],
        "senders": len(w["senders"]),
        "offered_load_pps": w["offered_load_pps"],
        "mean_normalized_latency": round(mean(latencies), 4) if latencies else 0.0,
        "recoveries": total,
        "expedited_fraction": round(expedited / total, 4) if total else 0.0,
        "unrecovered": sum(len(s) for s in result.unrecovered.values()),
    }
    for key in ("latency_p50", "latency_p90", "latency_p99"):
        if key in w:
            stats[key] = w[key]
    return stats


def test_workload_sweep():
    synthetic = bench_tree()
    config = SimulationConfig(seed=7)

    sweep = []
    for spec in WORKLOADS:
        row: dict = {"workload": spec}
        for protocol in PROTOCOLS:
            result = run_trace(synthetic, protocol, config, workload=spec)
            stats = run_stats(result)
            row[protocol] = stats
            # reliability holds under every traffic shape
            assert stats["unrecovered"] == 0, (spec, protocol)
            # every family offers the full packet budget
            assert stats["events"] == synthetic.trace.n_packets
        sweep.append(row)

    payload = {
        "suite": "workloads",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "tree": {
            "trace": "bench-workloads",
            "n_receivers": 8,
            "n_packets": 600,
        },
        "protocols": list(PROTOCOLS),
        "sweep": sweep,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    by_spec = {row["workload"]: row for row in sweep}
    # SRM never uses the expedited path; CESRM does under steady traffic
    for row in sweep:
        assert row["srm"]["expedited_fraction"] == 0.0
    assert by_spec["cbr"]["cesrm"]["expedited_fraction"] > 0.05
    # multi-source traffic really is multi-source
    assert by_spec["multi_source:senders=4"]["cesrm"]["senders"] == 4


def test_workload_streams_deterministic():
    """The sweep itself is reproducible: rerunning one stochastic family
    yields a byte-identical workload stats block."""
    synthetic = bench_tree()
    config = SimulationConfig(seed=7)
    spec = WORKLOADS[2]  # zipf — the most entropy-hungry family
    first = run_trace(synthetic, "cesrm", config, workload=spec).workload
    second = run_trace(synthetic, "cesrm", config, workload=spec).workload
    assert first == second
