"""Scale curves: events/sec and peak RSS from 10^3 to 10^5 receivers.

ROADMAP item 1 asks for 10^4-10^6-receiver worlds; this bench measures
what the stack actually sustains, in three sections:

* ``scale_curve`` — a CESRM run per scale point on generated
  transit-stub topologies (1k → 100k receivers), ``prime_distances``
  scale mode (the simulated session exchange is O(n^2) deliveries per
  period and caps out near 10^3; the analytic oracle removes exactly
  that term).  Each point runs in a *fresh child process* because peak
  RSS is a process-lifetime high-water mark (see
  :func:`repro.metrics.memory.peak_rss_bytes`) — in-process deltas
  would attribute earlier points' peaks to later ones.  The series is
  propagation-focused (per-link loss ~1e-9, so zero sampled losses):
  recovery traffic scales O(n^2) — every loss triggers request/reply
  multicasts fanned to all n members — and is measured separately.
  ``scale_curve_vector`` repeats the series under ``kernel="vector"``
  (kernel v2 delivery waves) so the trajectory shows the batching
  payoff at 10^5 receivers; both curves must agree on event counts.

* ``expedited_advantage`` — CESRM vs SRM on the same lossy trace at the
  scales where SRM's global suppression is still affordable to
  simulate.  The per-link loss rate is chosen per point so the
  *absolute* number of link-loss events stays small, isolating per-loss
  recovery cost from loss-count growth.  This section runs with the
  session protocol ON (``prime_distances=False``) for two reasons: the
  session's highest-seq reports are the secondary loss-detection
  channel (without them, losses near the stream tail are never
  detected), and CESRM's expedited path needs the staggered detections
  that session reports produce — caches are warmed by recoveries of
  *earlier* losses, and a 40-packet primed run compresses all
  detections into the data phase before any request-race winner can
  detect a second loss.

* ``index_patch`` — incremental :class:`~repro.net.index.TopologyIndex`
  churn patching (attach_receiver/detach_subtree in place) against a
  from-scratch rebuild on a 10^4-receiver world.  The acceptance floor
  is 5x; in-place leaf patching is micro-seconds against a rebuild's
  O(n log n) pass.

``REPRO_SCALE_MAX_RECEIVERS`` caps the curve (CI sets 10^4 to bound job
time); the full series needs ~2 GB RAM and a few minutes.  Results go
to ``BENCH_scale.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import time
from pathlib import Path

from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.metrics.memory import peak_rss_mb
from repro.net.families import build_topology
from repro.net.index import TopologyIndex
from repro.net.topology import NodeKind
from repro.workloads.topology import synthesize_topology_trace

ROOT = Path(__file__).parent.parent
RESULT_PATH = ROOT / "BENCH_scale.json"

PROTOCOL = "cesrm"
PACKETS = 8

#: The propagation series: (receivers, transit-stub spec).  Loss ~1e-9
#: means zero sampled losses — the curve isolates multicast propagation
#: and per-receiver state cost from O(n^2) recovery traffic.
SCALE_POINTS = (
    (1_000, "transit_stub:transits=4,stubs=5,hosts=50,packets=8,loss=1e-9"),
    (10_000, "transit_stub:transits=10,stubs=10,hosts=100,packets=8,loss=1e-9"),
    (32_000, "transit_stub:transits=8,stubs=25,hosts=160,packets=8,loss=1e-9"),
    (100_000, "transit_stub:transits=10,stubs=25,hosts=400,packets=8,loss=1e-9"),
)

#: Lossy points for the CESRM-vs-SRM comparison, at the scales where
#: SRM's global suppression is still affordable to simulate.  Per-link
#: loss is chosen so each point sees a handful of link-loss *trains*
#: regardless of scale — enough bursty (Gilbert) losses for CESRM's
#: cache to see trains, few enough that the O(n) reply fan-out per
#: loss stays bounded.
RECOVERY_PACKETS = 40
RECOVERY_POINTS = (
    (320, "transit_stub:transits=4,stubs=4,hosts=20,packets=40,loss=4e-3"),
    (500, "transit_stub:transits=5,stubs=5,hosts=20,packets=40,loss=2.5e-3"),
)

INDEX_PATCH_SPEC = "transit_stub:transits=10,stubs=10,hosts=100"
INDEX_PATCH_OPS = 200

#: Child process run for one scale point: argv = [spec, packets].  Runs
#: the simulation and prints a single JSON line; the parent harvests
#: events/sec and the child's own peak RSS.
_CHILD = """\
import json, sys, time
from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.metrics.memory import peak_rss_mb
from repro.workloads.topology import synthesize_topology_trace

spec, packets, kernel = sys.argv[1], int(sys.argv[2]), sys.argv[3]
t0 = time.perf_counter()
trace = synthesize_topology_trace(spec, seed=0, max_packets=packets)
synth_s = time.perf_counter() - t0
config = SimulationConfig(
    max_packets=packets, prime_distances=True, drain_time=2.0, kernel=kernel
)
t0 = time.perf_counter()
result = run_trace(trace, "cesrm", config)
wall_s = time.perf_counter() - t0
print(json.dumps({
    "receivers": len(trace.trace.tree.receivers),
    "synth_s": round(synth_s, 2),
    "wall_s": round(wall_s, 2),
    "events": result.events_processed,
    "events_per_sec": round(result.events_processed / wall_s),
    "sim_time": round(result.sim_time, 3),
    "losses": result.total_losses,
    "peak_rss_mb": peak_rss_mb(),
}))
"""

RESULTS: dict = {}


def max_receivers() -> int:
    return int(os.environ.get("REPRO_SCALE_MAX_RECEIVERS", "") or 100_000)


def _child_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _run_curve(kernel: str) -> list[dict]:
    points = [(n, spec) for n, spec in SCALE_POINTS if n <= max_receivers()]
    assert points, "REPRO_SCALE_MAX_RECEIVERS excludes every scale point"
    curve = []
    for n, spec in points:
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD, spec, str(PACKETS), kernel],
            capture_output=True,
            text=True,
            env=_child_env(),
            check=True,
        )
        row = json.loads(proc.stdout)
        assert row["receivers"] == n, spec
        assert row["losses"] == 0, spec  # propagation series is lossless
        assert row["events"] > n  # every receiver saw every packet
        row["spec"] = spec
        curve.append(row)
    # events/sec must not collapse at scale (heap growth is logarithmic)
    assert curve[-1]["events_per_sec"] > curve[0]["events_per_sec"] / 10
    return curve


def test_scale_curve():
    RESULTS["scale_curve"] = _run_curve("python")


def test_scale_curve_vector():
    """The same series under ``kernel=\"vector\"`` — the scale payoff of
    wave batching.  Event counts must match the python curve point for
    point (waves fold arrivals but still count them), and the top point
    must be faster than its python twin."""
    curve = _run_curve("vector")
    RESULTS["scale_curve_vector"] = curve
    python_curve = RESULTS.get("scale_curve")
    if python_curve:  # section ordering: python curve runs first
        for py_row, vec_row in zip(python_curve, curve):
            assert vec_row["events"] == py_row["events"], vec_row["spec"]
        assert curve[-1]["wall_s"] < python_curve[-1]["wall_s"]


def _recovery_stats(result) -> dict:
    records = [r for recs in result.metrics.recoveries.values() for r in recs]
    latencies = sorted(r.latency for r in records)
    expedited = sum(1 for r in records if r.expedited)
    return {
        "events": result.events_processed,
        "wall_s": round(result.wall_time, 2),
        "losses": result.total_losses,
        "recovered": len(records),
        "expedited_fraction": round(expedited / len(records), 4) if records else 0.0,
        "mean_latency_s": round(sum(latencies) / len(latencies), 4)
        if latencies
        else None,
        "retransmissions": result.overhead.retransmissions,
        "multicast_control": result.overhead.multicast_control,
        "unicast_control": result.overhead.unicast_control,
    }


def test_expedited_advantage():
    points = [(n, spec) for n, spec in RECOVERY_POINTS if n <= max_receivers()]
    rows = []
    for n, spec in points:
        trace = synthesize_topology_trace(spec, seed=0, max_packets=RECOVERY_PACKETS)
        # Sessions ON: they are the secondary loss-detection channel and
        # the source of the staggered detections the expedite path needs.
        config = SimulationConfig(max_packets=RECOVERY_PACKETS, drain_time=10.0)
        cell: dict = {"receivers": n, "spec": spec, "prime_distances": False}
        for protocol in ("cesrm", "srm"):
            cell[protocol] = _recovery_stats(run_trace(trace, protocol, config))
        assert cell["cesrm"]["losses"] == cell["srm"]["losses"]
        assert cell["cesrm"]["losses"] > 0, spec  # the point is recovery
        assert cell["cesrm"]["expedited_fraction"] > 0, spec
        assert cell["srm"]["expedited_fraction"] == 0, spec
        rows.append(cell)
    RESULTS["expedited_advantage"] = rows


def _rebuild(tree) -> TopologyIndex:
    return TopologyIndex(
        names=tuple(tree._nodes),
        parent_of=tree._parents,
        children_of=tree._children,
        receivers=tuple(tree.current_receivers()),
    )


def test_index_patch_speedup():
    tree = build_topology(INDEX_PATCH_SPEC)
    index = tree.index  # materialize once, then patch in place
    routers = [
        n
        for n in tree.nodes
        if tree.kind(n) is NodeKind.ROUTER and n.startswith("u")
    ]
    rng = random.Random(7)

    # Membership is tracked locally so the timed loop measures only the
    # index patches, not O(n) current_receivers() materializations.
    members = list(tree.current_receivers())
    detached: list[str] = []
    t0 = time.perf_counter()
    for _ in range(INDEX_PATCH_OPS):
        if detached and (rng.random() < 0.5 or len(members) < 3):
            name = detached.pop()
            tree.attach_receiver(name, rng.choice(routers))
            members.append(name)
        else:
            i = rng.randrange(len(members))
            victim = members[i]
            members[i] = members[-1]
            members.pop()
            tree.detach_subtree(victim)
            detached.append(victim)
    incremental_s = time.perf_counter() - t0
    assert tree.index is index  # still the original object, never rebuilt

    rebuilds = 3
    t0 = time.perf_counter()
    for _ in range(rebuilds):
        _rebuild(tree)
    rebuild_s = (time.perf_counter() - t0) / rebuilds

    per_op_us = incremental_s / INDEX_PATCH_OPS * 1e6
    speedup = rebuild_s / (incremental_s / INDEX_PATCH_OPS)
    RESULTS["index_patch"] = {
        "spec": INDEX_PATCH_SPEC,
        "receivers": 10_000,
        "ops": INDEX_PATCH_OPS,
        "incremental_us_per_op": round(per_op_us, 1),
        "rebuild_ms": round(rebuild_s * 1e3, 1),
        "speedup": round(speedup, 1),
    }
    assert speedup >= 5, RESULTS["index_patch"]


def test_write_payload():
    """Last in file order: persists whatever sections ran."""
    assert RESULTS, "no bench sections recorded"
    payload = {
        "suite": "scale",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "protocol": PROTOCOL,
        "curve_packets": PACKETS,
        "curve_prime_distances": True,
        "max_receivers": max_receivers(),
        **RESULTS,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
