"""The recovery-cache policy frontier.

CESRM's expedited path lives or dies by what the per-source recovery
cache still holds when the next loss arrives, and :mod:`repro.core.cachelab`
makes the retention policy a swept axis.  This benchmark runs every
built-in policy family over three cache-hostile scenarios on one
synthetic tree:

* ``churn`` — flapping receiver links, so cached repliers keep going
  stale (the paper's §4.3 motivation for eviction-on-failure),
* ``replier_crash`` — crash/restart of well-placed receivers, stressing
  the replier-eviction path directly, and
* ``flash_crowd`` — a flash-crowd workload whose loss burst floods the
  cache far past any bounded capacity.

For each (scenario, policy) cell it records the cache stats block —
inserts, the eviction taxonomy, hit rate — plus the run's expedited
fraction, and derives the frontier the docs plot: expedited fraction
(benefit) against eviction rate (churn cost).  Results go to
``BENCH_cachelab.json`` at the repo root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.faults import FaultPlan
from repro.faults.plan import LinkFlap, NodeCrash
from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.traces.synthesize import SynthesisParams, synthesize_trace

RESULT_PATH = Path(__file__).parent.parent / "BENCH_cachelab.json"

#: Every built-in family, parameterized so bounded policies actually
#: evict under the scenarios below.
POLICIES = (
    "paper:capacity=16",
    "lru:capacity=8",
    "lfu:capacity=8",
    "ttl:capacity=16,ttl=2s",
    "prob:capacity=16,p=0.5",
    "unbounded",
)

PROTOCOL = "cesrm"


def bench_tree():
    params = SynthesisParams(
        name="bench-cachelab",
        n_receivers=10,
        tree_depth=4,
        period=0.05,
        n_packets=500,
        target_losses=170,
    )
    return synthesize_trace(params, seed=13)


def scenarios(synthetic):
    """(name, faults, workload) triples derived from the tree shape so
    the schedule is a pure function of the synthesis seed."""
    tree = synthetic.trace.tree
    receivers = tree.receivers
    flap_targets = (receivers[1], receivers[-2])
    crash_targets = (receivers[0], receivers[len(receivers) // 2])
    churn = FaultPlan(
        events=tuple(
            LinkFlap(
                u=tree.parent(r),
                v=r,
                mean_up=1.5,
                mean_down=0.6,
                start=2.0,
            )
            for r in flap_targets
        )
    )
    replier_crash = FaultPlan(
        events=tuple(
            NodeCrash(host=r, at=4.0 + 3.0 * i, restart_after=2.5)
            for i, r in enumerate(crash_targets)
        )
    )
    return (
        ("churn", churn, None),
        ("replier_crash", replier_crash, None),
        ("flash_crowd", None, "flash_crowd:peak=8,ramp=2"),
    )


def cell_stats(block: dict) -> dict:
    inserts = block["inserts"]
    return {
        "spec": block["spec"],
        "caches": block["caches"],
        "inserts": inserts,
        "rejects": block["rejects"],
        "evictions": block["evictions"],
        "capacity_evictions": block["capacity_evictions"],
        "replier_evictions": block["replier_evictions"],
        "expirations": block["expirations"],
        "hit_rate": round(block["hit_rate"], 4),
        "expedited_fraction": round(block["expedited_fraction"], 4),
        "eviction_rate": round(
            (block["evictions"] + block["expirations"]) / inserts, 4
        )
        if inserts
        else 0.0,
    }


def test_cachelab_frontier():
    synthetic = bench_tree()

    sweep = []
    for scenario, faults, workload in scenarios(synthetic):
        row: dict = {"scenario": scenario}
        for spec in POLICIES:
            config = SimulationConfig(seed=13, cache=spec)
            result = run_trace(
                synthetic, PROTOCOL, config, faults=faults, workload=workload
            )
            assert result.cache is not None
            row[spec] = cell_stats(result.cache)
        sweep.append(row)

    # The frontier: per scenario, (eviction_rate, expedited_fraction)
    # points per policy, sorted by cost so the docs can plot it directly.
    frontier = {
        row["scenario"]: sorted(
            (
                {
                    "policy": spec,
                    "eviction_rate": row[spec]["eviction_rate"],
                    "expedited_fraction": row[spec]["expedited_fraction"],
                }
                for spec in POLICIES
            ),
            key=lambda point: point["eviction_rate"],
        )
        for row in sweep
    }

    payload = {
        "suite": "cachelab",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "tree": {
            "trace": "bench-cachelab",
            "n_receivers": 10,
            "n_packets": 500,
        },
        "protocol": PROTOCOL,
        "policies": list(POLICIES),
        "sweep": sweep,
        "frontier": frontier,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    by_scenario = {row["scenario"]: row for row in sweep}
    for row in sweep:
        # unbounded is the zero-churn anchor of every frontier
        unbounded = row["unbounded"]
        assert unbounded["capacity_evictions"] == 0
        assert unbounded["rejects"] == 0
        for spec in POLICIES:
            cell = row[spec]
            assert cell["caches"] > 0
            assert 0.0 <= cell["hit_rate"] <= 1.0
            assert cell["evictions"] == (
                cell["capacity_evictions"] + cell["replier_evictions"]
            )
    # the TTL policy is the only one that expires entries
    flash = by_scenario["flash_crowd"]
    assert flash["ttl:capacity=16,ttl=2s"]["expirations"] > 0
    for spec in POLICIES:
        if not spec.startswith("ttl"):
            assert flash[spec]["expirations"] == 0, spec
    # the cache is actually exercised everywhere
    for row in sweep:
        assert row["paper:capacity=16"]["inserts"] > 0, row["scenario"]


def test_frontier_is_deterministic():
    """Rerunning a stochastic cell (prob admission + flapping links)
    reproduces the stats block byte for byte."""
    synthetic = bench_tree()
    _, faults, _ = scenarios(synthetic)[0]
    config = SimulationConfig(seed=13, cache="prob:capacity=16,p=0.5")
    first = run_trace(synthetic, PROTOCOL, config, faults=faults).cache
    second = run_trace(synthetic, PROTOCOL, config, faults=faults).cache
    assert first == second
