"""Figure 2 — per-receiver difference between expedited and non-expedited
average normalized recovery times under CESRM.  Paper shape: 1–2.5 RTT."""

from repro.harness.experiments import figure2
from repro.harness.report import render_figure2

from benchmarks.conftest import run_once


def test_figure2(benchmark, ctx, save_report):
    results = run_once(benchmark, figure2, ctx)
    assert len(results) == 6
    for res in results:
        defined = [g for g in res.gaps if g is not None]
        assert defined, res.trace
        assert 0.5 <= res.mean_gap <= 2.8, res.trace
    save_report("figure2", render_figure2(results))
