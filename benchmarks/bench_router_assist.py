"""§3.3 — router-assisted CESRM: turning-point subcast localizes expedited
replies, cutting their exposure versus plain CESRM at equal reliability."""

from repro.harness.experiments import router_assist_comparison
from repro.harness.report import render_router_assist

from benchmarks.conftest import run_once


def test_router_assist(benchmark, ctx, save_report):
    rows = run_once(benchmark, router_assist_comparison, ctx)
    by_trace = {}
    for row in rows:
        by_trace.setdefault(row.trace, {})[row.protocol] = row
    total_plain = 0
    total_assisted = 0
    for trace, pair in by_trace.items():
        total_plain += pair["cesrm"].expedited_reply_crossings
        total_assisted += pair["cesrm-router"].expedited_reply_crossings
        # latency parity: localization must not slow recovery down
        assert (
            pair["cesrm-router"].avg_normalized_latency
            <= pair["cesrm"].avg_normalized_latency * 1.15
        ), trace
    assert total_assisted < total_plain  # exposure strictly reduced
    save_report("router_assist", render_router_assist(rows))
