"""Recovery under replier crashes: CESRM's expedited path vs SRM fallback.

CESRM's advantage rests on cached requestor/replier pairs staying alive.
This benchmark crashes the ``k`` most active expeditious repliers at
staggered mid-run times for rising ``k`` and compares, per protocol:

* mean normalized recovery latency over the surviving receivers,
* the fraction of recoveries completed through the expedited path
  (CESRM only — SRM has no expedited machinery), and
* cache evictions triggered by expedited attempts aimed at dead hosts.

As ``k`` grows, CESRM's expedited fraction collapses and its latency
converges toward SRM's suppression-timer baseline — the expedited →
fallback crossover.  Reliability must hold throughout: every loss at a
live receiver recovers.  Results go to ``BENCH_faults.json`` at the repo
root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.faults import FaultPlan, NodeCrash
from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.metrics.stats import mean
from repro.net.packet import PacketKind
from repro.traces.synthesize import SynthesisParams, synthesize_trace

RESULT_PATH = Path(__file__).parent.parent / "BENCH_faults.json"

#: Crash counts swept; 0 is the fault-free baseline.
CRASH_COUNTS = (0, 1, 2, 3)
#: Stagger between consecutive crashes, after the first at CRASH_AT.
CRASH_AT = 10.0
CRASH_STAGGER = 4.0


def crashy_workload():
    params = SynthesisParams(
        name="bench-faults",
        n_receivers=8,
        tree_depth=3,
        period=0.04,
        n_packets=800,
        target_losses=320,
    )
    return synthesize_trace(params, seed=2)


def rank_repliers(synthetic) -> list[str]:
    """Receivers ordered by expedited replies sent on a clean CESRM run."""
    clean = run_trace(synthetic, "cesrm", SimulationConfig(seed=1))
    return sorted(
        clean.receivers,
        key=lambda h: clean.metrics.sends_by_host_kind(h, PacketKind.EREPL),
        reverse=True,
    )


def crash_plan(victims: list[str]) -> FaultPlan:
    return FaultPlan(
        events=tuple(
            NodeCrash(host=victim, at=CRASH_AT + i * CRASH_STAGGER)
            for i, victim in enumerate(victims)
        )
    )


def survivor_stats(result, victims: list[str]) -> dict:
    live = [r for r in result.receivers if r not in victims]
    latencies: list[float] = []
    expedited = fallback = 0
    for receiver in live:
        latencies.extend(result.normalized_latencies(receiver))
        expedited += result.metrics.recovery_count(receiver, expedited=True)
        fallback += result.metrics.recovery_count(receiver, expedited=False)
    total = expedited + fallback
    return {
        "mean_normalized_latency": round(mean(latencies), 4),
        "recoveries": total,
        "expedited_fraction": round(expedited / total, 4) if total else 0.0,
        "unrecovered_at_live_receivers": sum(
            len(seqnos)
            for host, seqnos in result.unrecovered.items()
            if host not in victims
        ),
    }


def test_replier_crash_crossover():
    synthetic = crashy_workload()
    repliers = rank_repliers(synthetic)
    config = SimulationConfig(seed=1)

    sweep = []
    for k in CRASH_COUNTS:
        victims = repliers[:k]
        plan = crash_plan(victims)
        row: dict = {"crashed_repliers": k, "victims": victims}
        for protocol in ("srm", "cesrm"):
            result = run_trace(synthetic, protocol, config, faults=plan)
            stats = survivor_stats(result, victims)
            if result.faults is not None:
                stats["cache_evictions"] = result.faults.get("cache_evictions", 0)
                assert result.faults["crashes"] == k
            row[protocol] = stats
            # reliability: no live receiver is left short
            assert stats["unrecovered_at_live_receivers"] == 0, (protocol, k)
        row["cesrm_advantage"] = round(
            row["srm"]["mean_normalized_latency"]
            - row["cesrm"]["mean_normalized_latency"],
            4,
        )
        sweep.append(row)

    payload = {
        "suite": "fault-injection",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "workload": {
            "trace": "bench-faults",
            "n_receivers": 8,
            "n_packets": 800,
            "crash_at": CRASH_AT,
            "crash_stagger": CRASH_STAGGER,
        },
        "sweep": sweep,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    baseline, worst = sweep[0], sweep[-1]
    # fault-free: the expedited path carries real traffic and beats SRM
    assert baseline["cesrm"]["expedited_fraction"] > 0.1
    assert baseline["cesrm_advantage"] > 0
    # crashing the top repliers starves the expedited path: its share of
    # recoveries falls and CESRM's edge over SRM shrinks — the crossover.
    assert (
        worst["cesrm"]["expedited_fraction"]
        < baseline["cesrm"]["expedited_fraction"]
    )
    assert worst["cesrm_advantage"] < baseline["cesrm_advantage"]
