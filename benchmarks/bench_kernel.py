"""End-to-end forwarding-kernel benchmark (the ISSUE-4 speedup gate).

Times the standard SRM+CESRM trace sweep — every Table 1 figure trace at
1200 packets — straight through ``run_trace`` (no cache, no process pool),
so the number is the hot path itself: topology queries, per-hop forwarding,
and the event engine.

The committed ``BENCH_kernel.json`` carries a ``baseline`` section that was
recorded by running this file against the pre-refactor string/dict hot
path.  Each run rewrites the file with the same baseline plus the current
timings and the speedup; when a baseline is present the benchmark asserts
the kernel is at least 2x faster end to end.

Run via ``cesrm bench kernel`` or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel.py -q

Record a fresh baseline (only for a deliberate re-baseline)::

    PYTHONPATH=src REPRO_BENCH_REBASELINE=1 python -m pytest benchmarks/bench_kernel.py -q
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.traces.synthesize import synthesize_trace
from repro.traces.yajnik import FIGURE_TRACES, trace_meta

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
PROTOCOLS = ("srm", "cesrm")
MAX_PACKETS = 1200
SEED = 0
MIN_SPEEDUP = 2.0
#: Repetitions per (trace, protocol); each run reports its fastest wall
#: time so one scheduler hiccup cannot flip the gate.  The committed
#: baseline was recorded with the identical min-of-N methodology.
REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))


def _sweep(reps: int = REPS) -> dict:
    """Run the sweep ``reps`` times; keep each run's fastest wall time.

    The garbage collector is paused around each timed run (and collected
    between runs) so collection pauses land outside the timings.  Every
    repetition must process the identical event count — the sweep doubles
    as a determinism check.
    """
    config = SimulationConfig(seed=SEED, max_packets=MAX_PACKETS)
    runs = {}
    total = 0.0
    gc_was_enabled = gc.isenabled()
    try:
        for name in FIGURE_TRACES:
            synthetic = synthesize_trace(
                trace_meta(name), seed=SEED, max_packets=MAX_PACKETS
            )
            for protocol in PROTOCOLS:
                best = None
                events = None
                for _ in range(reps):
                    gc.collect()
                    gc.disable()
                    start = time.perf_counter()
                    result = run_trace(synthetic, protocol, config)
                    elapsed = time.perf_counter() - start
                    gc.enable()
                    if events is None:
                        events = result.events_processed
                    elif events != result.events_processed:
                        raise AssertionError(
                            f"{name}/{protocol}: event count varied across "
                            f"repetitions ({events} vs {result.events_processed})"
                        )
                    if best is None or elapsed < best:
                        best = elapsed
                runs[f"{name}/{protocol}"] = {
                    "wall_time": round(best, 4),
                    "events_processed": events,
                }
                total += best
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "max_packets": MAX_PACKETS,
        "seed": SEED,
        "reps": reps,
        "runs": runs,
        "total_wall_time": round(total, 4),
    }


def test_kernel_sweep_speedup():
    previous = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    baseline = previous.get("baseline")

    current = _sweep()
    if baseline is None or os.environ.get("REPRO_BENCH_REBASELINE"):
        baseline = current

    speedup = baseline["total_wall_time"] / current["total_wall_time"]
    payload = {
        "benchmark": "kernel",
        "traces": list(FIGURE_TRACES),
        "protocols": list(PROTOCOLS),
        "baseline": baseline,
        "current": current,
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # Same total work regardless of implementation: the refactor must not
    # change how many events the sweep processes.
    for key, row in baseline["runs"].items():
        assert (
            current["runs"][key]["events_processed"] == row["events_processed"]
        ), f"{key}: event count diverged from baseline"

    if baseline is not current:  # a real pre-refactor baseline exists
        assert speedup >= MIN_SPEEDUP, (
            f"kernel sweep speedup {speedup:.2f}x is below the "
            f"{MIN_SPEEDUP:.1f}x gate (baseline "
            f"{baseline['total_wall_time']:.2f}s, current "
            f"{current['total_wall_time']:.2f}s)"
        )
