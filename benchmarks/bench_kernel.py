"""End-to-end forwarding-kernel benchmark (the ISSUE-4 speedup gate).

Two sections, each gating one kernel generation:

* ``test_kernel_sweep_speedup`` (v1) times the standard SRM+CESRM trace
  sweep — every Table 1 figure trace at 1200 packets — straight through
  ``run_trace`` (no cache, no process pool), so the number is the hot
  path itself: topology queries, per-hop forwarding, and the event
  engine.  The committed ``baseline`` section in ``BENCH_kernel.json``
  was recorded against the pre-refactor string/dict hot path; when a
  baseline is present the benchmark asserts the kernel is at least 2x
  faster end to end.

* ``test_vector_kernel_speedup`` (v2) times the *same trace* under both
  ``SimulationConfig.kernel`` values on a propagation-heavy world — a
  deep binary tree, where the python kernel pays per-hop ``_transmit``
  calls and per-node arrival events that the vector kernel batches into
  numpy delivery waves.  Both kernels must process the identical event
  count (waves count their folded arrivals), and the vector kernel must
  be at least ``V2_MIN_SPEEDUP`` faster; a speedup below 1.0x means the
  vector kernel has regressed behind the oracle and fails loudly.

Each test merges its section into ``BENCH_kernel.json``, preserving the
other's.  Run via ``cesrm bench kernel`` (exits non-zero on any gate
failure) or directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel.py -q

Record a fresh v1 baseline (only for a deliberate re-baseline)::

    PYTHONPATH=src REPRO_BENCH_REBASELINE=1 python -m pytest benchmarks/bench_kernel.py -q
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.traces.synthesize import synthesize_trace
from repro.traces.yajnik import FIGURE_TRACES, trace_meta
from repro.workloads.topology import synthesize_topology_trace

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
PROTOCOLS = ("srm", "cesrm")
MAX_PACKETS = 1200
SEED = 0
MIN_SPEEDUP = 2.0
#: Repetitions per (trace, protocol); each run reports its fastest wall
#: time so one scheduler hiccup cannot flip the gate.  The committed
#: baseline was recorded with the identical min-of-N methodology.
REPS = int(os.environ.get("REPRO_BENCH_REPS", "3"))

#: The v2 world: a deep binary tree maximizes forwarding hops per
#: delivery (2 router hops per receiver against ~1 for a wide
#: transit-stub), which is exactly the work wave batching removes.
#: Near-zero loss keeps the run propagation-dominated — the recovery
#: path is protocol logic both kernels execute identically, so heavy
#: loss would only dilute the measurement.
V2_SPEC = "tree:depth=12,fanout=2,loss=1e-9,packets=80"
V2_PACKETS = 80
V2_PROTOCOL = "cesrm"
V2_MIN_SPEEDUP = 2.0


def _sweep(reps: int = REPS) -> dict:
    """Run the sweep ``reps`` times; keep each run's fastest wall time.

    The garbage collector is paused around each timed run (and collected
    between runs) so collection pauses land outside the timings.  Every
    repetition must process the identical event count — the sweep doubles
    as a determinism check.
    """
    config = SimulationConfig(seed=SEED, max_packets=MAX_PACKETS)
    runs = {}
    total = 0.0
    gc_was_enabled = gc.isenabled()
    try:
        for name in FIGURE_TRACES:
            synthetic = synthesize_trace(
                trace_meta(name), seed=SEED, max_packets=MAX_PACKETS
            )
            for protocol in PROTOCOLS:
                best = None
                events = None
                for _ in range(reps):
                    gc.collect()
                    gc.disable()
                    start = time.perf_counter()
                    result = run_trace(synthetic, protocol, config)
                    elapsed = time.perf_counter() - start
                    gc.enable()
                    if events is None:
                        events = result.events_processed
                    elif events != result.events_processed:
                        raise AssertionError(
                            f"{name}/{protocol}: event count varied across "
                            f"repetitions ({events} vs {result.events_processed})"
                        )
                    if best is None or elapsed < best:
                        best = elapsed
                runs[f"{name}/{protocol}"] = {
                    "wall_time": round(best, 4),
                    "events_processed": events,
                }
                total += best
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "max_packets": MAX_PACKETS,
        "seed": SEED,
        "reps": reps,
        "runs": runs,
        "total_wall_time": round(total, 4),
    }


def _merge_payload(update: dict) -> None:
    """Merge ``update`` into ``BENCH_kernel.json``, preserving the other
    section's keys (the v1 sweep and the v2 kernel race are independent
    gates that can run separately)."""
    payload = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    payload.update(update)
    OUT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_kernel_sweep_speedup():
    previous = json.loads(OUT_PATH.read_text()) if OUT_PATH.exists() else {}
    baseline = previous.get("baseline")

    current = _sweep()
    if baseline is None or os.environ.get("REPRO_BENCH_REBASELINE"):
        baseline = current

    speedup = baseline["total_wall_time"] / current["total_wall_time"]
    _merge_payload(
        {
            "benchmark": "kernel",
            "traces": list(FIGURE_TRACES),
            "protocols": list(PROTOCOLS),
            "baseline": baseline,
            "current": current,
            "speedup": round(speedup, 3),
            "min_speedup": MIN_SPEEDUP,
        }
    )

    # Same total work regardless of implementation: the refactor must not
    # change how many events the sweep processes.
    for key, row in baseline["runs"].items():
        assert (
            current["runs"][key]["events_processed"] == row["events_processed"]
        ), f"{key}: event count diverged from baseline"

    if baseline is not current:  # a real pre-refactor baseline exists
        assert speedup >= MIN_SPEEDUP, (
            f"kernel sweep speedup {speedup:.2f}x is below the "
            f"{MIN_SPEEDUP:.1f}x gate (baseline "
            f"{baseline['total_wall_time']:.2f}s, current "
            f"{current['total_wall_time']:.2f}s)"
        )


def _v2_run(kernel: str, trace, reps: int = REPS) -> dict:
    """Min-of-``reps`` wall time for one kernel on the v2 world, gc
    paused around each timed run, event count checked across reps."""
    config = SimulationConfig(
        max_packets=V2_PACKETS,
        prime_distances=True,
        drain_time=2.0,
        kernel=kernel,
    )
    best = None
    events = None
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(reps):
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            result = run_trace(trace, V2_PROTOCOL, config)
            elapsed = time.perf_counter() - start
            gc.enable()
            if events is None:
                events = result.events_processed
            elif events != result.events_processed:
                raise AssertionError(
                    f"{kernel}: event count varied across repetitions "
                    f"({events} vs {result.events_processed})"
                )
            if best is None or elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "kernel": kernel,
        "wall_time": round(best, 4),
        "events_processed": events,
        "events_per_sec": round(events / best),
    }


def test_vector_kernel_speedup():
    trace = synthesize_topology_trace(V2_SPEC, seed=SEED, max_packets=V2_PACKETS)
    python_run = _v2_run("python", trace)
    vector_run = _v2_run("vector", trace)

    speedup = python_run["wall_time"] / vector_run["wall_time"]
    _merge_payload(
        {
            "v2": {
                "spec": V2_SPEC,
                "protocol": V2_PROTOCOL,
                "max_packets": V2_PACKETS,
                "seed": SEED,
                "reps": REPS,
                "python": python_run,
                "vector": vector_run,
                "speedup": round(speedup, 3),
                "min_speedup": V2_MIN_SPEEDUP,
            }
        }
    )

    # One wave event folds N arrivals, but events_processed counts them
    # all — the two kernels must agree on the total work performed.
    assert vector_run["events_processed"] == python_run["events_processed"], (
        "vector kernel event count diverged from the python oracle"
    )
    assert speedup >= 1.0, (
        f"vector kernel is SLOWER than the python oracle "
        f"({speedup:.2f}x); the batched hot path has regressed"
    )
    assert speedup >= V2_MIN_SPEEDUP, (
        f"vector kernel speedup {speedup:.2f}x is below the "
        f"{V2_MIN_SPEEDUP:.1f}x gate (python "
        f"{python_run['wall_time']:.2f}s, vector "
        f"{vector_run['wall_time']:.2f}s)"
    )
