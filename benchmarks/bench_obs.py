"""Tracing overhead: disabled vs ring-buffer vs JSONL (repro.obs).

Two measurements, both written to ``BENCH_obs.json`` at the repo root:

* **Engine micro-bench** — the current :class:`Simulator` with obs
  detached against a bench-local replica of the pre-obs event loop (no
  tracer/profiler branch).  This isolates the *disabled-mode* cost the
  instrumentation added to the hot path, and is asserted ≤5% (best-of-N
  with a small absolute epsilon, since at these durations scheduler noise
  rivals the effect being measured).
* **Figure-1 workload** — one full ``run_trace`` of the figure-1 default
  trace under each tracing mode (disabled / ring-buffer sink / JSONL file
  sink), so the real cost of *enabling* tracing is on record.  Enabled
  modes are only sanity-bounded: they do strictly more work per event.
"""

from __future__ import annotations

import heapq
import json
import time
from pathlib import Path

from repro.harness.config import SimulationConfig
from repro.harness.runner import run_trace
from repro.obs import JsonlFileSink, RingBufferSink, Tracer
from repro.sim.engine import Simulator
from repro.traces.synthesize import synthesize_trace
from repro.traces.yajnik import trace_meta

from benchmarks.conftest import bench_max_packets

RESULT_PATH = Path(__file__).parent.parent / "BENCH_obs.json"

MICRO_EVENTS = 200_000
BEST_OF = 5
#: Absolute slack for the micro-bench: at a few hundred ms total, one bad
#: context switch is worth several percent on its own, and the two loops
#: under comparison now differ by a single per-event branch.
EPSILON_S = 0.025


class PreObsSimulator(Simulator):
    """The engine with the pre-obs event loop, used as the micro-bench
    baseline: a replica of :meth:`Simulator.run`'s batched drain loop with
    the per-event profiler branch removed.  Keep in sync with the real
    loop — the comparison is only meaningful while the two differ by
    exactly the obs plumbing."""

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        heappop = heapq.heappop
        buckets = self._buckets
        done = False
        try:
            while not done:
                entry = None
                bucket = self._bucket
                pos = self._bucket_pos
                while True:
                    if bucket is not None:
                        size = len(bucket)
                        while pos < size:
                            candidate = bucket[pos]
                            if type(candidate) is tuple or not candidate.cancelled:
                                entry = candidate
                                break
                            pos += 1
                        if entry is not None:
                            break
                        self._bucket = bucket = None
                    times = self._times
                    if not times:
                        break
                    time_ = heappop(times)
                    bucket = buckets.pop(time_)
                    self._bucket = bucket
                    self._bucket_time = time_
                    pos = 0
                if entry is None:
                    break
                self._bucket_pos = pos
                time_ = self._bucket_time
                if until is not None and time_ > until:
                    if self._now < until:
                        self._now = until
                    break
                if self._stopped or (max_events is not None and fired >= max_events):
                    break
                self._now = time_
                while True:
                    self._bucket_pos = pos + 1
                    self._events_processed += 1
                    if type(entry) is tuple:
                        callback, args = entry
                    else:
                        entry.fired = True
                        callback = entry.callback
                        args = entry.args
                    callback(*args)
                    fired += 1
                    pos = self._bucket_pos
                    entry = None
                    size = len(bucket)
                    while pos < size:
                        candidate = bucket[pos]
                        if type(candidate) is tuple or not candidate.cancelled:
                            entry = candidate
                            break
                        pos += 1
                    if entry is None:
                        self._bucket = None
                        break
                    self._bucket_pos = pos
                    if self._stopped or (
                        max_events is not None and fired >= max_events
                    ):
                        done = True
                        break
        finally:
            self._running = False


def _drive(sim: Simulator, n_events: int) -> None:
    remaining = [n_events]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(0.001, tick)

    sim.schedule(0.001, tick)
    sim.run()
    assert sim.events_processed == n_events


def _best_of(factory, runs: int = BEST_OF) -> float:
    best = float("inf")
    for _ in range(runs):
        sim = factory()
        start = time.perf_counter()
        _drive(sim, MICRO_EVENTS)
        best = min(best, time.perf_counter() - start)
    return best


def _workload_seconds(tracer: Tracer | None, synthetic, config) -> float:
    start = time.perf_counter()
    run_trace(synthetic, "cesrm", config, tracer=tracer)
    return time.perf_counter() - start


def test_tracing_overhead(tmp_path):
    # -- engine micro-bench: disabled obs vs the pre-obs loop ----------
    baseline_s = _best_of(PreObsSimulator)
    disabled_s = _best_of(Simulator)
    micro_ratio = disabled_s / baseline_s

    # -- figure-1 workload under each mode -----------------------------
    max_packets = bench_max_packets()
    config = SimulationConfig(seed=0, max_packets=max_packets)
    synthetic = synthesize_trace(
        trace_meta("WRN951113"), seed=0, max_packets=max_packets
    )
    run_trace(synthetic, "cesrm", config)  # warm caches/imports

    untraced_s = _workload_seconds(None, synthetic, config)
    ring = RingBufferSink()
    ring_s = _workload_seconds(Tracer(ring), synthetic, config)
    jsonl_s = _workload_seconds(
        Tracer(JsonlFileSink(tmp_path / "events.jsonl")), synthetic, config
    )

    payload = {
        "suite": "obs-overhead",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "micro": {
            "events": MICRO_EVENTS,
            "best_of": BEST_OF,
            "pre_obs_engine_s": round(baseline_s, 4),
            "obs_disabled_s": round(disabled_s, 4),
            "disabled_overhead_ratio": round(micro_ratio, 4),
        },
        "figure1_workload": {
            "trace": "WRN951113",
            "protocol": "cesrm",
            "max_packets": max_packets,
            "events_traced": ring.emitted,
            "disabled_s": round(untraced_s, 4),
            "ring_buffer_s": round(ring_s, 4),
            "jsonl_s": round(jsonl_s, 4),
            "ring_overhead_ratio": round(ring_s / untraced_s, 4),
            "jsonl_overhead_ratio": round(jsonl_s / untraced_s, 4),
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # Disabled-mode hot-path cost: ≤5% plus scheduler-noise slack.
    assert disabled_s <= baseline_s * 1.05 + EPSILON_S, payload["micro"]
    # Enabled modes do real per-event work; just keep them sane.
    assert ring.emitted > 0
    assert ring_s < untraced_s * 10, payload["figure1_workload"]
    assert jsonl_s < untraced_s * 25, payload["figure1_workload"]
