"""Bandwidth sweep: repair-storm congestion.

The links in §4.3 are 1.5 Mbps — ample for the data stream (200–400 kbps)
but not for SRM's duplicate retransmission bursts on larger groups.  This
sweep shrinks the link bandwidth under a fixed 16-receiver workload and
watches the recovery latency: SRM's duplicate replies queue behind one
another and its latency blows up first, while CESRM's single expedited
reply per loss keeps it serviceable far below SRM's collapse point.
"""

from repro.harness.config import SimulationConfig
from repro.harness.report import render_table
from repro.harness.runner import run_trace
from repro.metrics.stats import mean
from repro.traces.synthesize import SynthesisParams, synthesize_trace

from benchmarks.conftest import run_once

BANDWIDTHS = (4e6, 1.5e6, 0.75e6)


def _sweep():
    params = SynthesisParams(
        name="congestion",
        n_receivers=16,
        tree_depth=5,
        period=0.08,
        n_packets=900,
        target_losses=900,
    )
    synthetic = synthesize_trace(params, seed=4)
    rows = []
    for bandwidth in BANDWIDTHS:
        for protocol in ("srm", "cesrm"):
            config = SimulationConfig(bandwidth_bps=bandwidth, drain_time=60.0)
            result = run_trace(synthetic, protocol, config)
            latency = mean(
                [result.avg_normalized_recovery_time(r) for r in result.receivers]
            )
            rows.append(
                (
                    f"{bandwidth / 1e6:.2f} Mbps",
                    protocol,
                    round(latency, 2),
                    result.overhead.retransmissions,
                    result.unrecovered_losses,
                )
            )
    return rows


def test_congestion(benchmark, save_report):
    rows = run_once(benchmark, _sweep)
    by_key = {(r[0], r[1]): r for r in rows}
    for bandwidth in BANDWIDTHS:
        key = f"{bandwidth / 1e6:.2f} Mbps"
        srm = by_key[(key, "srm")]
        cesrm = by_key[(key, "cesrm")]
        assert cesrm[2] < srm[2], key  # CESRM faster at every bandwidth
    # shrinking bandwidth hurts SRM far more than CESRM
    srm_blowup = by_key[("0.75 Mbps", "srm")][2] / by_key[("4.00 Mbps", "srm")][2]
    ces_blowup = (
        by_key[("0.75 Mbps", "cesrm")][2] / by_key[("4.00 Mbps", "cesrm")][2]
    )
    assert srm_blowup > ces_blowup
    save_report(
        "congestion",
        "Repair-storm congestion — bandwidth sweep (16 receivers)\n"
        + render_table(
            ["Bandwidth", "Protocol", "AvgLat(RTT)", "RetxUnits", "Unrec"], rows
        ),
    )
