"""Membership churn (§3.3/§5): CESRM under replier crashes.

The paper's robustness claim versus LMS-style router-assisted protocols:
when previously chosen repliers leave or crash, CESRM "continues to
recover packets in the interim" through SRM's fall-back, and its on-the-fly
pair selection adapts.  This bench crashes the currently cached replier
mid-run — twice — and checks recovery never stops and expedited recovery
resumes after each adaptation.
"""

from repro.core.agent import CesrmAgent
from repro.core.policies import make_policy
from repro.harness.report import render_table
from repro.metrics.collector import MetricsCollector
from repro.net.network import Network
from repro.net.packet import PacketKind
from repro.net.topology import build_random_tree
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.srm.constants import SrmParams

from benchmarks.conftest import run_once

N_EVENTS = 60  # loss events, evenly spaced
PERIOD = 0.5


def _run_churn_scenario():
    registry = RngRegistry(5)
    tree = build_random_tree(10, 4, registry.stream("topology"))
    sim = Simulator()
    network = Network(sim, tree)
    metrics = MetricsCollector()
    agents = {
        host: CesrmAgent(
            sim=sim,
            network=network,
            host_id=host,
            source=tree.source,
            params=SrmParams(),
            rng=registry.stream(f"agent:{host}"),
            metrics=metrics,
            policy=make_policy("most-recent"),
        )
        for host in tree.hosts
    }
    for index, host in enumerate(tree.hosts):
        agents[host].start(session_offset=(index + 0.5) / (len(tree.hosts) + 1))

    # every odd packet is dropped on one fixed interior link, chosen deep
    # enough that nearby receivers (not the source) become the cached
    # repliers — those are the members we can crash
    candidates = [
        (u, v)
        for u, v in tree.links
        if 2 <= len(tree.subtree_receivers(v)) <= len(tree.receivers) - 2
    ]
    victim_link = max(candidates, key=lambda link: tree.node_depth(link[1]))

    def drop_fn(u, v, packet):
        return (
            packet.kind is PacketKind.DATA
            and packet.seqno % 2 == 1
            and (u, v) == victim_link
        )

    network.drop_fn = drop_fn
    t0 = 3.25
    source = agents[tree.source]
    for seq in range(2 * N_EVENTS):
        sim.schedule_at(t0 + seq * PERIOD / 2, source.send_data, seq)

    # Crash whichever replier is cached at one third and two thirds of the
    # run (dynamic: read it from a victim receiver's cache at crash time).
    observer = next(
        r for r in tree.receivers if r in tree.subtree_receivers(victim_link[1])
    )

    crash_log = []

    def crash_current_replier():
        cached = agents[observer].cache.most_recent()
        if cached is None or cached.replier == tree.source:
            return  # never crash the source (it must keep sending)
        victim = cached.replier
        if not agents[victim].failed:
            agents[victim].fail()
            crash_log.append((sim.now, victim))

    end = t0 + N_EVENTS * PERIOD
    sim.schedule_at(t0 + (end - t0) / 3, crash_current_replier)
    sim.schedule_at(t0 + 2 * (end - t0) / 3, crash_current_replier)
    sim.run(until=end + 30.0)

    live_receivers = [r for r in tree.receivers if not agents[r].failed]
    unrecovered = sum(len(agents[r].unrecovered_losses()) for r in live_receivers)
    recoveries = [
        rec
        for host in live_receivers
        for rec in metrics.recoveries.get(host, [])
    ]
    expedited = sum(1 for rec in recoveries if rec.expedited)
    return {
        "crashes": crash_log,
        "unrecovered": unrecovered,
        "recoveries": len(recoveries),
        "expedited": expedited,
        "erqst": metrics.total_sends(PacketKind.ERQST),
        "erepl": metrics.total_sends(PacketKind.EREPL),
        "last_expedited_seq": max(
            (rec.seq for rec in recoveries if rec.expedited), default=-1
        ),
    }


def test_churn_robustness(benchmark, save_report):
    result = run_once(benchmark, _run_churn_scenario)
    # recovery never stops, no matter who crashed
    assert result["unrecovered"] == 0
    assert result["recoveries"] > 0
    # expedited recovery resumed after the crashes (late packets expedited)
    assert result["last_expedited_seq"] > 2 * N_EVENTS * 2 // 3
    # and a solid share of recoveries stayed expedited despite the churn
    assert result["expedited"] / result["recoveries"] > 0.4
    rows = [
        ("crashes", "; ".join(f"{v}@{t:.1f}s" for t, v in result["crashes"])),
        ("recoveries (live hosts)", result["recoveries"]),
        ("expedited recoveries", result["expedited"]),
        ("unrecovered", result["unrecovered"]),
        ("expedited requests/replies", f"{result['erqst']}/{result['erepl']}"),
    ]
    save_report(
        "churn",
        "§3.3/§5 — churn robustness\n" + render_table(["metric", "value"], rows),
    )
