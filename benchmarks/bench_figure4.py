"""Figure 4 — reply packets sent per host: SRM replies vs CESRM fall-back
+ expedited replies.  Paper shape: CESRM sends substantially fewer."""

from repro.harness.experiments import figure4
from repro.harness.report import render_packet_counts

from benchmarks.conftest import run_once


def test_figure4(benchmark, ctx, save_report):
    results = run_once(benchmark, figure4, ctx)
    assert len(results) == 6
    for res in results:
        assert res.cesrm_total < res.srm_total, res.trace
        assert sum(res.cesrm_expedited) > 0, res.trace
    save_report("figure4", render_packet_counts(results, "Figure 4 (replies)"))
