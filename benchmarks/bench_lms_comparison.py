"""CESRM vs LMS (§3.3, §5): localization parity, churn asymmetry.

Two head-to-head comparisons on identical workloads:

1. **static membership** — both router-assisted schemes localize repairs
   (subcast, no multicast recovery floods), with LMS's pre-designated
   repliers answering NACKs immediately;
2. **churn** — the designated replier crashes and router state stays
   stale: LMS recovery behind that router stalls until re-designation,
   while CESRM (same crash) keeps recovering through the SRM fall-back
   and adapts its cached pairs on the fly.
"""

from repro.core.agent import CesrmAgent
from repro.core.policies import make_policy
from repro.harness.report import render_table
from repro.lms.agent import LmsAgent
from repro.lms.fabric import LmsFabric
from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import mean
from repro.net.network import Network
from repro.net.packet import PacketKind
from repro.net.topology import build_random_tree
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.srm.constants import SrmParams

from benchmarks.conftest import run_once

N_PACKETS = 400
PERIOD = 0.15


def _build(protocol: str, seed: int = 3):
    registry = RngRegistry(seed)
    tree = build_random_tree(12, 5, registry.stream("topology"))
    sim = Simulator()
    network = Network(sim, tree)
    metrics = MetricsCollector()
    fabric = LmsFabric(tree)
    agents = {}
    for host in tree.hosts:
        if protocol == "lms":
            agents[host] = LmsAgent(
                sim=sim,
                network=network,
                host_id=host,
                source=tree.source,
                params=SrmParams(),
                rng=registry.stream(f"agent:{host}"),
                metrics=metrics,
                fabric=fabric,
            )
        else:
            agents[host] = CesrmAgent(
                sim=sim,
                network=network,
                host_id=host,
                source=tree.source,
                params=SrmParams(),
                rng=registry.stream(f"agent:{host}"),
                metrics=metrics,
                policy=make_policy("most-recent"),
            )
    for index, host in enumerate(tree.hosts):
        agents[host].start(session_offset=(index + 0.5) / (len(tree.hosts) + 1))
    return sim, network, tree, agents, metrics, fabric


def _victim_subtree(tree):
    """A deep interior link whose subtree has >= 2 receivers."""
    candidates = [
        (u, v)
        for u, v in tree.links
        if 2 <= len(tree.subtree_receivers(v)) <= len(tree.receivers) - 2
    ]
    return max(candidates, key=lambda link: tree.node_depth(link[1]))


def _run(protocol: str, churn: bool):
    sim, network, tree, agents, metrics, fabric = _build(protocol)
    link = _victim_subtree(tree)

    def drop_fn(u, v, packet):
        return (
            packet.kind is PacketKind.DATA
            and packet.seqno % 4 == 1
            and (u, v) == link
        )

    network.drop_fn = drop_fn
    t0 = 3.25
    for seq in range(N_PACKETS):
        sim.schedule_at(t0 + seq * PERIOD, agents[tree.source].send_data, seq)

    crashed = []
    if churn:

        def crash():
            # crash the subtree's designated replier (what LMS NACKs hit)
            victim = fabric.replier_of(link[1])
            if victim != tree.source and not agents[victim].failed:
                agents[victim].fail()
                fabric.fail_host(victim)  # router tables stay stale
                crashed.append(victim)

        sim.schedule_at(t0 + N_PACKETS * PERIOD / 3, crash)

    sim.run(until=t0 + N_PACKETS * PERIOD + 40.0)
    live = [r for r in tree.receivers if not agents[r].failed]
    unrecovered = sum(len(agents[r].unrecovered_losses()) for r in live)
    latencies = []
    for receiver in live:
        rtt = 2 * tree.hop_distance(tree.source, receiver) * 0.020
        latencies.extend(
            rec.latency / rtt for rec in metrics.recoveries.get(receiver, [])
        )
    return {
        "unrecovered": unrecovered,
        "latency": mean(latencies),
        "recoveries": len(latencies),
        "crashed": crashed,
        "retx_units": network.crossings.retransmission_crossings,
        "mcast_recovery": metrics.total_sends(PacketKind.RQST)
        + metrics.total_sends(PacketKind.REPL),
    }


def _compare():
    out = {}
    for protocol in ("cesrm", "lms"):
        for churn in (False, True):
            out[(protocol, churn)] = _run(protocol, churn)
    return out


def test_cesrm_vs_lms(benchmark, save_report):
    results = run_once(benchmark, _compare)

    static_lms = results[("lms", False)]
    static_ces = results[("cesrm", False)]
    # static membership: both fully reliable; LMS has no multicast
    # recovery traffic at all (fully localized by construction)
    assert static_lms["unrecovered"] == 0
    assert static_ces["unrecovered"] == 0
    assert static_lms["mcast_recovery"] == 0

    churn_lms = results[("lms", True)]
    churn_ces = results[("cesrm", True)]
    assert churn_lms["crashed"] and churn_ces["crashed"]
    # the paper's robustness asymmetry:
    assert churn_ces["unrecovered"] == 0  # CESRM: SRM fall-back saves it
    assert churn_lms["unrecovered"] > 0  # LMS: stale router state stalls

    rows = [
        (
            protocol,
            "churn" if churn else "static",
            r["recoveries"],
            r["unrecovered"],
            round(r["latency"], 2),
            r["retx_units"],
            ",".join(r["crashed"]) or "-",
        )
        for (protocol, churn), r in sorted(results.items())
    ]
    save_report(
        "lms_comparison",
        "§3.3/§5 — CESRM vs LMS\n"
        + render_table(
            ["Protocol", "Mode", "Recoveries", "STALLED", "AvgLat(RTT)", "RetxUnits", "Crashed"],
            rows,
        ),
    )
