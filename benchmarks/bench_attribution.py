"""§4.2 — loss-location accuracy: the selected link combinations carry
posterior probability >95% for the overwhelming majority of losses
(the paper: >90% of combos above 95% on 13 of 14 traces)."""

from repro.harness.report import render_table
from repro.traces.attribution import Attributor
from repro.traces.inference import (
    estimate_link_rates_mle,
    estimate_link_rates_subtree,
)
from repro.traces.yajnik import YAJNIK_TRACES

from benchmarks.conftest import run_once


def _attribute_all(ctx):
    rows = []
    for meta_name in [m.name for m in YAJNIK_TRACES]:
        synthetic = ctx.trace(meta_name)
        trace = synthetic.trace
        rates = estimate_link_rates_subtree(trace)
        mle = estimate_link_rates_mle(trace)
        agreement = max(abs(rates[link] - mle[link]) for link in rates)
        attributor = Attributor(trace.tree, rates)
        result = attributor.attribute_trace(trace)
        rows.append(
            (
                meta_name,
                len(result.combos),
                result.distinct_patterns,
                100.0 * result.posterior_fraction_above(0.95),
                100.0 * result.posterior_fraction_above(0.98),
                agreement,
            )
        )
    return rows


def test_attribution_accuracy(benchmark, ctx, save_report):
    rows = run_once(benchmark, _attribute_all, ctx)
    assert len(rows) == 14
    below = [r[0] for r in rows if r[3] <= 90.0]
    assert len(below) <= 1, below  # paper: 13 of 14 traces above 90%
    for row in rows:
        assert row[5] < 0.03, row  # the two estimators agree (§4.2)
    text = "§4.2 — attribution accuracy\n" + render_table(
        ["Trace", "Lossy pkts", "Patterns", ">95%", ">98%", "|sub-mle|"],
        rows,
    )
    save_report("attribution", text)
