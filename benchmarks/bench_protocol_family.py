"""The reliable-multicast design space: all architectures head-to-head.

The paper's §1 frames CESRM within three recovery architectures: SRM's
receiver-driven multicast suppression [4,5], router-assisted designated
repliers [8,12,13] (LMS here), and sender/DR-driven ACK hierarchies [9,14]
(RMTP here).  This bench runs all of them — plus adaptive SRM and
router-assisted CESRM — on identical traces and pins the expected corner
of the design space for each:

* SRM: slowest repairs *and* the most retransmission traffic (suppression
  leaves duplicates);
* CESRM: far faster than SRM at a fraction of the traffic, no
  infrastructure needed;
* LMS: fastest (immediate NACKs to pre-designated repliers) and fully
  localized, but needs router support;
* RMTP: latency bounded by the status cycle (slowest), overhead
  structurally minimal (unicast, deduplicated).
"""

from repro.harness.report import render_table
from repro.metrics.stats import mean
from repro.traces.yajnik import FIGURE_TRACES

from benchmarks.conftest import run_once

PROTOCOLS = ("srm", "srm-adaptive", "cesrm", "cesrm-router", "lms", "rmtp")


def _family(ctx):
    rows = []
    for name in FIGURE_TRACES[:3]:
        for protocol in PROTOCOLS:
            result = ctx.run(name, protocol)
            latency = mean(
                [result.avg_normalized_recovery_time(r) for r in result.receivers]
            )
            rows.append(
                (
                    name,
                    protocol,
                    round(latency, 2),
                    result.overhead.retransmissions,
                    result.overhead.multicast_control,
                    result.overhead.unicast_control,
                    result.unrecovered_losses,
                )
            )
    return rows


def test_protocol_family(benchmark, ctx, save_report):
    rows = run_once(benchmark, _family, ctx)
    by_key = {(r[0], r[1]): r for r in rows}
    for name in FIGURE_TRACES[:3]:
        latency = {p: by_key[(name, p)][2] for p in PROTOCOLS}
        retx = {p: by_key[(name, p)][3] for p in PROTOCOLS}
        unrec = {p: by_key[(name, p)][6] for p in PROTOCOLS}
        assert all(v == 0 for v in unrec.values()), (name, unrec)
        # the latency ordering of the design space
        assert latency["cesrm"] < latency["srm"], name
        assert latency["lms"] < latency["cesrm"], name
        assert latency["rmtp"] > latency["cesrm"], name
        # the traffic ordering
        assert retx["cesrm"] < retx["srm"], name
        assert retx["lms"] < retx["srm"], name
        assert retx["rmtp"] < retx["srm"], name
        # SRM is the only one multicasting requests
        assert by_key[(name, "lms")][4] == 0
        assert by_key[(name, "rmtp")][4] == 0
    save_report(
        "protocol_family",
        "The reliable-multicast design space\n"
        + render_table(
            ["Trace", "Protocol", "AvgLat(RTT)", "Retx", "McastCtl", "UcastCtl", "Unrec"],
            rows,
        ),
    )
