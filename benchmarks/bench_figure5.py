"""Figure 5 — (a) percentage of successful expedited recoveries and
(b) CESRM transmission overhead as a percentage of SRM's, all 14 traces.

Paper shapes: success >70% on all traces (>80% on all but two);
retransmission overhead <80% of SRM's everywhere (<60% on 10 of 14);
control overhead <52% on all but one trace."""

from repro.harness.experiments import figure5
from repro.harness.report import render_figure5

from benchmarks.conftest import run_once


def test_figure5(benchmark, ctx, save_report):
    rows = run_once(benchmark, figure5, ctx)
    assert len(rows) == 14
    below_70 = [r.trace for r in rows if r.expedited_success_pct < 70.0]
    assert len(below_70) <= 2, below_70
    for row in rows:
        assert row.expedited_success_pct > 55.0, row.trace
        assert row.retransmissions_pct < 85.0, row.trace
        assert row.total_pct < 100.0, row.trace
    control_above_60 = [
        r.trace
        for r in rows
        if r.multicast_control_pct + r.unicast_control_pct > 60.0
    ]
    assert len(control_above_60) <= 2, control_above_60
    save_report("figure5", render_figure5(rows))
