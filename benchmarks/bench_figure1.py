"""Figure 1 — per-receiver average normalized recovery time, SRM vs CESRM,
over the six typical traces.  Paper shape: CESRM 40–70% below SRM."""

from repro.harness.experiments import figure1
from repro.harness.report import render_figure1

from benchmarks.conftest import run_once


def test_figure1(benchmark, ctx, save_report):
    results = run_once(benchmark, figure1, ctx)
    assert len(results) == 6
    for res in results:
        assert res.reduction > 0.15, res.trace  # CESRM clearly wins
        for value in res.srm:
            # 0.0 marks a receiver with no recoveries in the truncation
            assert 0.0 <= value < 4.0  # the §3.4 ballpark in RTTs
    mean_reduction = sum(r.reduction for r in results) / len(results)
    assert 0.30 <= mean_reduction <= 0.75  # paper: ~50% on average
    save_report("figure1", render_figure1(results))
