"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper.  A
session-scoped :class:`ExperimentContext` memoizes traces and runs, so
figures sharing simulations (1–4 use the same six traces) pay for them
once.  Every benchmark renders its table/figure to
``benchmarks/output/<name>.txt`` so the reproduced artefacts survive the
run (stdout is captured by pytest).

Replay length: ``REPRO_MAX_PACKETS`` (default 2500 here) packets per
trace; set ``REPRO_FULL_TRACES=1`` for the full-length traces.

Execution goes through the :mod:`repro.exec` engine: set ``REPRO_JOBS=N``
to fan uncached runs out over N worker processes, and
``REPRO_BENCH_CACHE=1`` to reuse the persistent run cache (off by default
so timings measure simulation, not cache reads).

Per-benchmark wall-clock timings are written to ``BENCH_exec.json`` at the
repo root after every session, so the performance trajectory is tracked
across PRs in machine-readable form.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.exec.cache import RunCache
from repro.harness.experiments import ExperimentContext

BENCH_MAX_PACKETS = 2500

OUTPUT_DIR = Path(__file__).parent / "output"
TIMINGS_PATH = Path(__file__).parent.parent / "BENCH_exec.json"

_timings: dict[str, float] = {}


def bench_max_packets() -> int | None:
    if os.environ.get("REPRO_FULL_TRACES", "") not in ("", "0"):
        return None
    override = os.environ.get("REPRO_MAX_PACKETS", "")
    if override:
        return int(override)
    return BENCH_MAX_PACKETS


def bench_jobs() -> int:
    return int(os.environ.get("REPRO_JOBS", "") or "1")


def bench_cache() -> RunCache | None:
    if os.environ.get("REPRO_BENCH_CACHE", "") not in ("", "0"):
        return RunCache()
    return None


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(
        max_packets=bench_max_packets(),
        jobs=bench_jobs(),
        cache=bench_cache(),
    )


@pytest.fixture(scope="session")
def save_report():
    OUTPUT_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")

    return save


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once — simulation batches are seconds-long, so
    statistical repetition buys nothing and costs minutes."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def pytest_runtest_logreport(report):
    if report.when == "call" and report.passed:
        _timings[report.nodeid] = report.duration


def pytest_sessionfinish(session, exitstatus):
    if not _timings:
        return
    payload = {
        "suite": "benchmarks",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "max_packets": bench_max_packets(),
        "jobs": bench_jobs(),
        "cache": bench_cache() is not None,
        "timings_s": {
            nodeid: round(duration, 4)
            for nodeid, duration in sorted(_timings.items())
        },
        "total_s": round(sum(_timings.values()), 4),
    }
    TIMINGS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
