"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper.  A
session-scoped :class:`ExperimentContext` memoizes traces and runs, so
figures sharing simulations (1–4 use the same six traces) pay for them
once.  Every benchmark renders its table/figure to
``benchmarks/output/<name>.txt`` so the reproduced artefacts survive the
run (stdout is captured by pytest).

Replay length: ``REPRO_MAX_PACKETS`` (default 2500 here) packets per
trace; set ``REPRO_FULL_TRACES=1`` for the full-length traces.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.experiments import ExperimentContext

BENCH_MAX_PACKETS = 2500

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_max_packets() -> int | None:
    if os.environ.get("REPRO_FULL_TRACES", "") not in ("", "0"):
        return None
    override = os.environ.get("REPRO_MAX_PACKETS", "")
    if override:
        return int(override)
    return BENCH_MAX_PACKETS


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(max_packets=bench_max_packets())


@pytest.fixture(scope="session")
def save_report():
    OUTPUT_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")

    return save


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once — simulation batches are seconds-long, so
    statistical repetition buys nothing and costs minutes."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
