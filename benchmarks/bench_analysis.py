"""§3.4 — the closed-form latency model against simulation.

Eq. (1): first-round non-expedited ≈ 3.25 RTT for the paper's parameters;
Eq. (2): expedited ≈ REORDER-DELAY + 1 RTT.  §4.4 observes SRM averages in
[1.5, 3.25] RTT and expedited gaps in [1, 2.5] RTT."""

from repro.harness.experiments import section_3_4
from repro.harness.report import render_section_3_4

from benchmarks.conftest import run_once


def test_section_3_4(benchmark, ctx, save_report):
    result = run_once(benchmark, section_3_4, ctx)
    assert result.model_non_expedited_rtt == 3.25
    assert result.model_expedited_rtt == 1.0
    lo, hi = result.srm_band
    for trace, avg in result.simulated_srm_avg_rtt.items():
        assert lo * 0.8 <= avg <= hi * 1.1, (trace, avg)
    glo, ghi = result.gap_band
    for trace, gap in result.simulated_gap_rtt.items():
        assert glo * 0.6 <= gap <= ghi * 1.2, (trace, gap)
    save_report("section34", render_section_3_4(result))
